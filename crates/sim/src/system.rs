//! The full simulated system: cores + hierarchy + DRAM + feedback loop.

use crate::cache::PrivateCache;
use crate::camat::{CamatEpoch, CamatTracker};
use crate::config::SimConfig;
use crate::core_model::{Core, IssuePlan};
use crate::dram::Dram;
use crate::llc::{LlcOutcome, SharedLlc};
use crate::mmu::Mmu;
use crate::mshr::{MshrFile, MshrOutcome};
use crate::policy::{AccessInfo, BuiltinLru, PolicySlot, SystemFeedback};
use crate::prefetch::{AnyPrefetcher, FillLevel, PrefetchRequest};
use crate::stats::{CacheStats, CoreStats, SimResults};
use crate::trace::TraceSource;
use crate::types::{AccessKind, LineAddr, TraceRecord};
use chrome_telemetry::{EpochRecord, EventKind, ServiceLevel, SpanBuilder, Stage, TelemetrySink};

/// Resolve an MSHR for `line` starting at cycle `t`: either the miss is
/// merged with an outstanding one (`Err(ready)`), or the caller may issue
/// at the returned cycle (`Ok(issue_at)`), possibly delayed by a full
/// file — this is what bounds each level's demand MLP. Only demand
/// misses allocate MSHRs; prefetch timing rides on per-block arrival
/// stamps and the DRAM queue-depth shedding instead.
fn mshr_acquire(mshr: &mut MshrFile, line: LineAddr, mut t: u64) -> Result<u64, u64> {
    loop {
        match mshr.lookup(line, t) {
            MshrOutcome::Merged { ready } => return Err(ready),
            MshrOutcome::Available => return Ok(t),
            MshrOutcome::Full { free_at } => {
                debug_assert!(free_at > t, "full MSHR must free strictly later");
                t = free_at;
            }
        }
    }
}

/// Memory-controller prefetch shedding threshold: a prefetch whose
/// target bank/bus queue exceeds this many cycles is dropped rather
/// than queued behind demand traffic.
const PREFETCH_SHED_CYCLES: u64 = 500;

/// Mesh-NoC timing wrapped around the shared LLC: the cache is split
/// into address-interleaved slices homed on mesh tiles, and every
/// core↔slice message crosses the [`chrome_noc::Mesh`] contention
/// model. Pure timing — hit/miss outcomes, policy decisions and fill
/// contents are untouched, so the NoC only shifts *when* completions
/// become visible, never *what* happens.
pub struct NocState {
    mesh: chrome_noc::Mesh,
    /// Number of address-interleaved LLC slices.
    slices: usize,
    /// `llc sets - 1` (power-of-two asserted by the LLC), so the slice
    /// interleave keys on the set index.
    set_mask: u64,
    /// Home tile of each slice (cores sit on tiles `0..cores`).
    slice_tiles: Vec<usize>,
    /// Cumulative accesses routed to each slice.
    slice_accesses: Vec<u64>,
    /// Counter snapshots at the last epoch boundary, so epoch records
    /// carry per-epoch deltas.
    epoch_slice_base: Vec<u64>,
    epoch_link_base: Vec<u64>,
}

impl NocState {
    fn new(cfg: chrome_noc::NocConfig, cores: usize, llc_sets: usize) -> Self {
        let slices = cfg.slices;
        let tiles = cores.max(slices);
        let mesh = chrome_noc::Mesh::new(tiles, cfg);
        let links = mesh.links();
        NocState {
            mesh,
            slices,
            set_mask: llc_sets as u64 - 1,
            slice_tiles: (0..slices)
                .map(|s| chrome_noc::slice_tile(s, slices, tiles))
                .collect(),
            slice_accesses: vec![0; slices],
            epoch_slice_base: vec![0; slices],
            epoch_link_base: vec![0; links],
        }
    }

    /// Number of address-interleaved LLC slices.
    pub fn slices(&self) -> usize {
        self.slices
    }

    /// Cumulative accesses routed to each slice.
    pub fn slice_accesses(&self) -> &[u64] {
        &self.slice_accesses
    }

    /// The underlying mesh (geometry, link counters, message count).
    pub fn mesh(&self) -> &chrome_noc::Mesh {
        &self.mesh
    }

    /// Route a request from `core` to `line`'s home slice, departing at
    /// `t`. Returns the arrival cycle at the slice and the slice index.
    fn request(&mut self, core: usize, line: LineAddr, t: u64) -> (u64, usize) {
        let set = (line.0 & self.set_mask) as usize;
        let slice = chrome_noc::slice_of_set(set, self.slices);
        self.slice_accesses[slice] += 1;
        (self.mesh.route(core, self.slice_tiles[slice], t), slice)
    }

    /// Route the response for a request served by `slice` back to
    /// `core`, departing at `t`. Returns the core-visible completion.
    fn respond(&mut self, slice: usize, core: usize, t: u64) -> u64 {
        self.mesh.route(self.slice_tiles[slice], core, t)
    }

    /// Per-slice access and per-link busy-cycle deltas since the
    /// previous call, advancing the epoch baselines.
    fn epoch_deltas(&mut self) -> (Vec<u64>, Vec<u64>) {
        let slices = self
            .slice_accesses
            .iter()
            .zip(&self.epoch_slice_base)
            .map(|(a, b)| a - b)
            .collect();
        let links = self
            .mesh
            .link_busy()
            .iter()
            .zip(&self.epoch_link_base)
            .map(|(a, b)| a - b)
            .collect();
        self.epoch_rebase();
        (slices, links)
    }

    /// Snap the epoch baselines to the current counters (used at the
    /// measurement boundary so the first measured epoch starts clean).
    fn epoch_rebase(&mut self) {
        self.epoch_slice_base.copy_from_slice(&self.slice_accesses);
        self.epoch_link_base.copy_from_slice(self.mesh.link_busy());
    }
}

/// Route a slice→core response through the mesh, or pass the time
/// through untouched when the NoC is off.
#[inline]
fn noc_respond(noc: Option<&mut NocState>, slice: usize, core: usize, t: u64) -> u64 {
    match noc {
        Some(n) => n.respond(slice, core, t),
        None => t,
    }
}

/// The memory hierarchy: private L1D/L2 per core, a shared LLC, DRAM,
/// prefetchers, the MMU and C-AMAT instrumentation.
pub struct MemHierarchy {
    l1d: Vec<PrivateCache>,
    l2: Vec<PrivateCache>,
    /// The shared last-level cache.
    pub llc: SharedLlc,
    /// The DRAM subsystem.
    pub dram: Dram,
    /// Mesh-NoC timing between cores and LLC slices; `None` keeps the
    /// classic uniform-latency LLC, byte-identical to pre-NoC results.
    noc: Option<NocState>,
    l1_pref: Vec<AnyPrefetcher>,
    l2_pref: Vec<AnyPrefetcher>,
    mmu: Mmu,
    /// Per-core C-AMAT accounting at the LLC.
    pub camat: CamatTracker,
    /// Epoch-refreshed concurrency feedback, shared with the LLC policy.
    pub feedback: SystemFeedback,
    l1_latency: u64,
    l2_latency: u64,
    scratch: Vec<PrefetchRequest>,
    /// Telemetry handle for the latency-attribution profiler; spans are
    /// only stamped when the sink is profiling.
    sink: TelemetrySink,
}

impl MemHierarchy {
    fn new(cfg: &SimConfig, policy: PolicySlot) -> Self {
        let cores = cfg.cores;
        let mut camat = CamatTracker::new(cores);
        camat.set_epoch_boundary(cfg.epoch_cycles);
        MemHierarchy {
            l1d: (0..cores).map(|_| PrivateCache::new(&cfg.l1d)).collect(),
            l2: (0..cores).map(|_| PrivateCache::new(&cfg.l2)).collect(),
            llc: SharedLlc::new(&cfg.llc(), cores, policy),
            dram: Dram::new(cfg.dram),
            noc: cfg.noc.map(|nc| NocState::new(nc, cores, cfg.llc().sets())),
            l1_pref: (0..cores)
                .map(|_| AnyPrefetcher::build(cfg.prefetchers.l1, cfg.prefetch_degree))
                .collect(),
            l2_pref: (0..cores)
                .map(|_| AnyPrefetcher::build(cfg.prefetchers.l2, cfg.prefetch_degree))
                .collect(),
            mmu: Mmu::default_8gb(),
            camat,
            feedback: SystemFeedback::new(cores),
            l1_latency: cfg.l1d.latency,
            l2_latency: cfg.l2.latency,
            scratch: Vec::with_capacity(16),
            sink: TelemetrySink::noop(),
        }
    }

    /// Open a latency-attribution span when profiling; compiles to
    /// `None` (and folds the hot path away) without the `telemetry`
    /// feature.
    #[inline]
    fn span_start(
        &self,
        core: usize,
        pc: u64,
        line: LineAddr,
        is_prefetch: bool,
        cycle: u64,
    ) -> Option<SpanBuilder> {
        if cfg!(feature = "telemetry") && self.sink.profiling() {
            Some(SpanBuilder::start(
                core as u32,
                pc,
                line.0,
                is_prefetch,
                cycle,
            ))
        } else {
            None
        }
    }

    /// Seal a span and hand it to the profiler.
    fn finish_span(
        &self,
        b: SpanBuilder,
        level: ServiceLevel,
        tail: Stage,
        end: u64,
        merged: bool,
    ) {
        self.sink.record_span(b.finish(level, tail, end, merged));
    }

    /// Write `line` back into L2 (allocating if absent), cascading dirty
    /// victims toward DRAM.
    fn writeback_to_l2(&mut self, core: usize, line: LineAddr, cycle: u64) {
        if self.l2[core].mark_dirty(line) {
            return;
        }
        if let Some(ev) = self.l2[core].fill(line, true, false, cycle) {
            if ev.dirty {
                self.writeback_to_llc(ev.line, cycle);
            }
        }
    }

    /// Write `line` back at the LLC: mark dirty if resident, otherwise
    /// send it to DRAM (non-inclusive hierarchy).
    fn writeback_to_llc(&mut self, line: LineAddr, cycle: u64) {
        if !self.llc.writeback(line) {
            self.dram.access(line, cycle, true);
        }
    }

    /// Fill `line` into L2 for `core`, handling the dirty-victim cascade.
    /// `ready` is the arrival cycle of the data.
    fn fill_l2(&mut self, core: usize, line: LineAddr, is_prefetch: bool, ready: u64) {
        if self.l2[core].probe(line).is_some() {
            return;
        }
        if let Some(ev) = self.l2[core].fill(line, false, is_prefetch, ready) {
            if ev.dirty {
                self.writeback_to_llc(ev.line, ready);
            }
        }
    }

    /// Fill `line` into L1D for `core`, handling the dirty-victim cascade.
    fn fill_l1(&mut self, core: usize, line: LineAddr, dirty: bool, is_prefetch: bool, ready: u64) {
        if self.l1d[core].probe(line).is_some() {
            return;
        }
        if let Some(ev) = self.l1d[core].fill(line, dirty, is_prefetch, ready) {
            if ev.dirty {
                self.writeback_to_l2(core, ev.line, ready);
            }
        }
    }

    /// Access the LLC (and DRAM beneath it) for a line that missed in L2.
    /// `t_llc` is the cycle at which the request reaches the LLC.
    /// Returns the completion cycle.
    ///
    /// Fills happen eagerly at lookup time, so a hit may be on a block
    /// whose data is still in flight (e.g. just prefetched); the MSHR
    /// holds the arrival time and the hit waits for it.
    fn access_llc(
        &mut self,
        core: usize,
        pc: u64,
        line: LineAddr,
        is_prefetch: bool,
        t_llc: u64,
        span: &mut Option<SpanBuilder>,
    ) -> u64 {
        if let Some(s) = span.as_mut() {
            s.mark_llc_entry(t_llc);
        }
        // With the mesh NoC enabled, the request first crosses the mesh
        // to the line's home slice; all LLC/DRAM math below then runs in
        // slice-local time, and each completion is routed back before it
        // becomes core-visible. With it off, both hops are the identity
        // and every expression below is bit-for-bit the classic
        // uniform-latency path. C-AMAT spans issue (`t_entry`) to the
        // core-visible completion, so NoC queueing shows up as memory
        // stall time exactly like MSHR or bank contention.
        let t_entry = t_llc;
        let (t_llc, slice) = match self.noc.as_mut() {
            Some(noc) => noc.request(core, line, t_llc),
            None => (t_llc, 0),
        };
        let info = AccessInfo {
            core,
            pc,
            line,
            is_prefetch,
            is_write: false,
            cycle: t_llc,
        };
        let done = match self.llc.access(&info, &self.feedback) {
            LlcOutcome::Hit { ready } => {
                // the block may still be in flight: wait for its arrival
                let base = t_llc + self.llc.latency;
                let done = noc_respond(self.noc.as_mut(), slice, core, ready.max(base));
                if let Some(mut s) = span.take() {
                    s.mark(Stage::LlcLookup, base);
                    self.finish_span(s, ServiceLevel::Llc, Stage::FillWait, done, false);
                }
                done
            }
            LlcOutcome::Miss {
                bypassed,
                writeback,
            } => {
                // `ready` is the slice-side fill time (what the cache
                // block and MSHR wait on); `done` is the core-visible
                // completion after the response hop.
                let (ready, done) = if is_prefetch {
                    // prefetches do not allocate MSHRs; shedding happens
                    // upstream in the prefetch path
                    let t = self
                        .dram
                        .access_timed(line, t_llc + self.llc.latency, false);
                    let done = noc_respond(self.noc.as_mut(), slice, core, t.done);
                    if let Some(mut s) = span.take() {
                        s.mark(Stage::LlcLookup, t_llc + self.llc.latency);
                        s.mark(Stage::DramQueue, t.start);
                        s.mark(Stage::DramService, t.row_done);
                        s.mark(Stage::DramQueue, t.xfer_start);
                        self.finish_span(s, ServiceLevel::Mem, Stage::DramTransfer, done, false);
                    }
                    (t.done, done)
                } else {
                    match mshr_acquire(&mut self.llc.mshr, line, t_llc) {
                        Err(merged_ready) => {
                            // no LlcLookup mark: the merged completion may
                            // predate the lookup latency, and the whole
                            // remainder is one MSHR wait either way
                            let done = noc_respond(self.noc.as_mut(), slice, core, merged_ready);
                            if let Some(s) = span.take() {
                                self.finish_span(
                                    s,
                                    ServiceLevel::Llc,
                                    Stage::LlcMshrWait,
                                    done,
                                    true,
                                );
                            }
                            (merged_ready, done)
                        }
                        Ok(t_issue) => {
                            let t = self
                                .dram
                                .access_timed(line, t_issue + self.llc.latency, false);
                            let done = noc_respond(self.noc.as_mut(), slice, core, t.done);
                            if let Some(mut s) = span.take() {
                                s.mark(Stage::LlcMshrWait, t_issue);
                                s.mark(Stage::LlcLookup, t_issue + self.llc.latency);
                                s.mark(Stage::DramQueue, t.start);
                                s.mark(Stage::DramService, t.row_done);
                                s.mark(Stage::DramQueue, t.xfer_start);
                                self.finish_span(
                                    s,
                                    ServiceLevel::Mem,
                                    Stage::DramTransfer,
                                    done,
                                    false,
                                );
                            }
                            self.llc.mshr.register(line, t.done);
                            (t.done, done)
                        }
                    }
                };
                if !bypassed {
                    self.llc.set_ready(line, ready);
                }
                if let Some(wb) = writeback {
                    self.dram.access(wb, t_llc, true);
                }
                done
            }
        };
        if !is_prefetch {
            self.camat.record(core, t_entry, done);
        }
        done
    }

    /// A demand access from `core`. Returns the completion cycle.
    pub fn demand_access(&mut self, core: usize, rec: &TraceRecord, cycle: u64) -> u64 {
        let is_write = rec.kind == AccessKind::Store;
        let line = self.mmu.translate(core, rec.vaddr);
        let mut span = self.span_start(core, rec.pc, line, false, cycle);

        self.l1d[core].stats.demand_accesses += 1;
        if let Some(block_ready) = self.l1d[core].lookup(line, is_write, false) {
            // the block may still be in flight (filled eagerly by a
            // prefetch or an earlier miss): wait for its arrival
            let done = (cycle + self.l1_latency).max(block_ready);
            self.trigger_l1_prefetcher(core, rec.pc, line, true, cycle);
            if let Some(mut s) = span {
                s.mark(Stage::L1Lookup, cycle + self.l1_latency);
                self.finish_span(s, ServiceLevel::L1, Stage::FillWait, done, false);
            }
            return done;
        }
        self.l1d[core].stats.demand_misses += 1;
        self.trigger_l1_prefetcher(core, rec.pc, line, false, cycle);

        let t_issue = match mshr_acquire(&mut self.l1d[core].mshr, line, cycle) {
            Err(ready) => {
                let done = ready.max(cycle + self.l1_latency);
                if let Some(mut s) = span {
                    s.mark(Stage::L1Lookup, cycle + self.l1_latency);
                    self.finish_span(s, ServiceLevel::L1, Stage::L1MshrWait, done, true);
                }
                return done;
            }
            Ok(t) => t,
        };
        let t_l2 = t_issue + self.l1_latency;
        if let Some(s) = span.as_mut() {
            s.mark(Stage::L1MshrWait, t_issue);
            s.mark(Stage::L1Lookup, t_l2);
        }

        self.l2[core].stats.demand_accesses += 1;
        let l2_res = self.l2[core].lookup(line, false, false);
        self.trigger_l2_prefetcher(core, rec.pc, line, l2_res.is_some(), t_l2);
        let ready = match l2_res {
            Some(block_ready) => {
                let done = (t_l2 + self.l2_latency).max(block_ready);
                if let Some(mut s) = span.take() {
                    s.mark(Stage::L2Lookup, t_l2 + self.l2_latency);
                    self.finish_span(s, ServiceLevel::L2, Stage::FillWait, done, false);
                }
                done
            }
            None => {
                self.l2[core].stats.demand_misses += 1;
                match mshr_acquire(&mut self.l2[core].mshr, line, t_l2) {
                    Err(ready) => {
                        if let Some(s) = span.take() {
                            self.finish_span(s, ServiceLevel::L2, Stage::L2MshrWait, ready, true);
                        }
                        ready
                    }
                    Ok(t2) => {
                        let t_llc = t2 + self.l2_latency;
                        if let Some(s) = span.as_mut() {
                            s.mark(Stage::L2MshrWait, t2);
                            s.mark(Stage::L2Lookup, t_llc);
                        }
                        let done = self.access_llc(core, rec.pc, line, false, t_llc, &mut span);
                        self.l2[core].mshr.register(line, done);
                        self.fill_l2(core, line, false, done);
                        done
                    }
                }
            }
        };
        debug_assert!(span.is_none(), "every demand path must seal its span");
        self.fill_l1(core, line, is_write, false, ready);
        self.l1d[core].mshr.register(line, ready);
        ready
    }

    /// Issue a prefetch generated at L1 (fills L1, L2 and — policy
    /// permitting — the LLC).
    fn prefetch_from_l1(&mut self, core: usize, pc: u64, line: LineAddr, cycle: u64) {
        if self.l1d[core].probe(line).is_some() {
            return; // already resident (also dedupes in-flight prefetches)
        }
        self.l1d[core].stats.prefetch_accesses += 1;
        self.l1d[core].stats.prefetch_misses += 1;
        let t_l2 = cycle + self.l1_latency;
        // L1 prefetches extend the demand stream, so they also train the
        // L2 prefetcher (otherwise an L1 prefetcher that covers the
        // stream starves the level below of training input).
        if let Some(ready) = self.prefetch_into_l2(core, pc, line, t_l2, true) {
            self.fill_l1(core, line, false, true, ready);
        }
    }

    /// Issue a prefetch generated at L2 (fills L2 and — policy
    /// permitting — the LLC, but not L1).
    fn prefetch_from_l2(&mut self, core: usize, pc: u64, line: LineAddr, cycle: u64) {
        let _ = self.prefetch_into_l2(core, pc, line, cycle, false);
    }

    /// Shared tail of the prefetch paths: look up L2, then LLC/DRAM, and
    /// fill L2. Returns the completion cycle, or `None` if the prefetch
    /// was shed because the target DRAM bank queue is too deep.
    /// `train_l2` lets L1-originated prefetches feed the L2 prefetcher
    /// (L2's own prefetches never re-train it, bounding the feedback
    /// loop).
    fn prefetch_into_l2(
        &mut self,
        core: usize,
        pc: u64,
        line: LineAddr,
        t_l2: u64,
        train_l2: bool,
    ) -> Option<u64> {
        if let Some(block_ready) = self.l2[core].lookup(line, false, true) {
            return Some((t_l2 + self.l2_latency).max(block_ready));
        }
        self.l2[core].stats.prefetch_accesses += 1;
        self.l2[core].stats.prefetch_misses += 1;
        // memory-controller shedding: if the line is not in the LLC and
        // its bank queue is deep, drop the prefetch instead of queueing
        // it behind demand traffic
        if self.llc.probe(line).is_none()
            && self.dram.queue_delay(line, t_l2) > PREFETCH_SHED_CYCLES
        {
            self.l2[core].stats.prefetch_dropped += 1;
            return None;
        }
        if train_l2 {
            self.trigger_l2_prefetcher(core, pc, line, false, t_l2);
        }
        let t_llc = t_l2 + self.l2_latency;
        let mut span = self.span_start(core, pc, line, true, t_l2);
        if let Some(s) = span.as_mut() {
            s.mark(Stage::L2Lookup, t_llc);
        }
        let done = self.access_llc(core, pc, line, true, t_llc, &mut span);
        self.fill_l2(core, line, true, done);
        Some(done)
    }

    fn trigger_l1_prefetcher(
        &mut self,
        core: usize,
        pc: u64,
        line: LineAddr,
        hit: bool,
        cycle: u64,
    ) {
        let mut proposals = std::mem::take(&mut self.scratch);
        proposals.clear();
        self.l1_pref[core].on_access(pc, line, hit, &mut proposals);
        for req in proposals.drain(..) {
            match req.fill {
                FillLevel::L1 => self.prefetch_from_l1(core, pc, req.line, cycle),
                FillLevel::L2 => self.prefetch_from_l2(core, pc, req.line, cycle),
                FillLevel::LlcOnly => self.prefetch_llc_only(core, pc, req.line, cycle),
            }
        }
        self.scratch = proposals;
    }

    fn trigger_l2_prefetcher(
        &mut self,
        core: usize,
        pc: u64,
        line: LineAddr,
        hit: bool,
        cycle: u64,
    ) {
        let mut proposals = std::mem::take(&mut self.scratch);
        proposals.clear();
        self.l2_pref[core].on_access(pc, line, hit, &mut proposals);
        for req in proposals.drain(..) {
            match req.fill {
                // an L2-resident prefetcher cannot fill L1
                FillLevel::L1 | FillLevel::L2 => self.prefetch_from_l2(core, pc, req.line, cycle),
                FillLevel::LlcOnly => self.prefetch_llc_only(core, pc, req.line, cycle),
            }
        }
        self.scratch = proposals;
    }

    /// A far-lookahead prefetch that fills only the shared LLC (subject
    /// to the management policy's bypass decision).
    fn prefetch_llc_only(&mut self, core: usize, pc: u64, line: LineAddr, cycle: u64) {
        if self.llc.probe(line).is_none()
            && self.dram.queue_delay(line, cycle) > PREFETCH_SHED_CYCLES
        {
            self.llc.stats.prefetch_dropped += 1;
            return;
        }
        let t_llc = cycle + self.l1_latency + self.l2_latency;
        let mut span = self.span_start(core, pc, line, true, cycle);
        if let Some(s) = span.as_mut() {
            s.mark(Stage::L1Lookup, cycle + self.l1_latency);
            s.mark(Stage::L2Lookup, t_llc);
        }
        let _ = self.access_llc(core, pc, line, true, t_llc, &mut span);
    }

    // ---- Functional path for sampled-replay warmup ----
    //
    // These mirror the timed access/fill/prefetch cascade above, driven
    // by per-core *pseudo-clocks* instead of the real scheduler: cache
    // contents, LLC policy state, prefetcher training, the MMU and the
    // DRAM bank/bus model all update exactly as in timed mode, while
    // MSHRs, C-AMAT accounting and latency spans are never touched. The
    // pseudo-clock (see [`System::functional_warm_to`]) advances at the
    // CPI the last detailed phase measured, so DRAM traffic arrives at
    // a realistic density and the memory-controller prefetch shed test
    // (`queue_delay > PREFETCH_SHED_CYCLES`) fires with the same
    // burstiness as in the full run — shed-sensitive prefetcher and
    // LLC warmup was by far the largest sampled-replay error source.

    /// Functional `writeback_to_llc`: dirty victims that miss the LLC
    /// become DRAM writes at the pseudo-clock, as in timed mode.
    fn functional_writeback_llc(&mut self, line: LineAddr, cycle: u64) {
        if !self.llc.writeback(line) {
            self.dram.access(line, cycle, true);
        }
    }

    fn functional_writeback_l2(&mut self, core: usize, line: LineAddr, cycle: u64) {
        if self.l2[core].mark_dirty(line) {
            return;
        }
        if let Some(ev) = self.l2[core].fill(line, true, false, cycle) {
            if ev.dirty {
                self.functional_writeback_llc(ev.line, cycle);
            }
        }
    }

    fn functional_fill_l2(&mut self, core: usize, line: LineAddr, is_prefetch: bool, cycle: u64) {
        if self.l2[core].probe(line).is_some() {
            return;
        }
        if let Some(ev) = self.l2[core].fill(line, false, is_prefetch, cycle) {
            if ev.dirty {
                self.functional_writeback_llc(ev.line, cycle);
            }
        }
    }

    fn functional_fill_l1(
        &mut self,
        core: usize,
        line: LineAddr,
        dirty: bool,
        is_prefetch: bool,
        cycle: u64,
    ) {
        if self.l1d[core].probe(line).is_some() {
            return;
        }
        if let Some(ev) = self.l1d[core].fill(line, dirty, is_prefetch, cycle) {
            if ev.dirty {
                self.functional_writeback_l2(core, ev.line, cycle);
            }
        }
    }

    /// LLC leg of the functional path: policy callbacks, statistics,
    /// eager fills and the DRAM traffic beneath a miss run exactly as
    /// in timed mode (warming replacement/bypass state and the bank
    /// queues), but there is no MSHR or C-AMAT activity. Returns the
    /// completion estimate (hit latency or real DRAM completion) and
    /// whether the access went to memory.
    fn functional_access_llc(
        &mut self,
        core: usize,
        pc: u64,
        line: LineAddr,
        is_prefetch: bool,
        cycle: u64,
    ) -> (u64, bool) {
        // Same NoC gating as the timed path, against the pseudo-clock:
        // requests route to the home slice, completions route back, so
        // functional warmup sees the same traffic skew and link pressure
        // a timed run would.
        let (cycle, slice) = match self.noc.as_mut() {
            Some(noc) => noc.request(core, line, cycle),
            None => (cycle, 0),
        };
        let info = AccessInfo {
            core,
            pc,
            line,
            is_prefetch,
            is_write: false,
            cycle,
        };
        match self.llc.access(&info, &self.feedback) {
            LlcOutcome::Hit { ready } => {
                let done = (cycle + self.llc.latency).max(ready);
                (noc_respond(self.noc.as_mut(), slice, core, done), false)
            }
            LlcOutcome::Miss {
                bypassed,
                writeback,
            } => {
                let done = self.dram.access(line, cycle + self.llc.latency, false);
                if !bypassed {
                    self.llc.set_ready(line, done);
                }
                if let Some(wb) = writeback {
                    self.dram.access(wb, cycle, true);
                }
                (noc_respond(self.noc.as_mut(), slice, core, done), true)
            }
        }
    }

    fn functional_prefetch_l2(
        &mut self,
        core: usize,
        pc: u64,
        line: LineAddr,
        train_l2: bool,
        cycle: u64,
    ) -> Option<u64> {
        if let Some(ready) = self.l2[core].lookup(line, false, true) {
            return Some((cycle + self.l2_latency).max(ready));
        }
        self.l2[core].stats.prefetch_accesses += 1;
        self.l2[core].stats.prefetch_misses += 1;
        // the real memory-controller shed test, against the pseudo-time
        // bank queues — without it DRAM-bound workloads warm up far
        // beyond timed reality
        if self.llc.probe(line).is_none()
            && self.dram.queue_delay(line, cycle) > PREFETCH_SHED_CYCLES
        {
            self.l2[core].stats.prefetch_dropped += 1;
            return None;
        }
        if train_l2 {
            self.functional_trigger_l2(core, pc, line, false, cycle);
        }
        let (done, _) = self.functional_access_llc(core, pc, line, true, cycle);
        self.functional_fill_l2(core, line, true, done);
        Some(done)
    }

    fn functional_prefetch(&mut self, core: usize, pc: u64, req: PrefetchRequest, cycle: u64) {
        match req.fill {
            FillLevel::L1 => {
                if self.l1d[core].probe(req.line).is_some() {
                    return;
                }
                self.l1d[core].stats.prefetch_accesses += 1;
                self.l1d[core].stats.prefetch_misses += 1;
                if let Some(ready) = self.functional_prefetch_l2(core, pc, req.line, true, cycle) {
                    self.functional_fill_l1(core, req.line, false, true, ready);
                }
            }
            FillLevel::L2 => {
                let _ = self.functional_prefetch_l2(core, pc, req.line, false, cycle);
            }
            FillLevel::LlcOnly => {
                if self.llc.probe(req.line).is_none()
                    && self.dram.queue_delay(req.line, cycle) > PREFETCH_SHED_CYCLES
                {
                    self.llc.stats.prefetch_dropped += 1;
                    return;
                }
                let _ = self.functional_access_llc(core, pc, req.line, true, cycle);
            }
        }
    }

    fn functional_trigger_l1(
        &mut self,
        core: usize,
        pc: u64,
        line: LineAddr,
        hit: bool,
        cycle: u64,
    ) {
        let mut proposals = std::mem::take(&mut self.scratch);
        proposals.clear();
        self.l1_pref[core].on_access(pc, line, hit, &mut proposals);
        for req in proposals.drain(..) {
            self.functional_prefetch(core, pc, req, cycle);
        }
        self.scratch = proposals;
    }

    fn functional_trigger_l2(
        &mut self,
        core: usize,
        pc: u64,
        line: LineAddr,
        hit: bool,
        cycle: u64,
    ) {
        let mut proposals = std::mem::take(&mut self.scratch);
        proposals.clear();
        self.l2_pref[core].on_access(pc, line, hit, &mut proposals);
        for mut req in proposals.drain(..) {
            // an L2-resident prefetcher cannot fill L1
            if req.fill == FillLevel::L1 {
                req.fill = FillLevel::L2;
            }
            self.functional_prefetch(core, pc, req, cycle);
        }
        self.scratch = proposals;
    }

    /// Apply one trace record functionally: the full demand cascade
    /// (L1 → L2 → LLC → DRAM, prefetcher training included) at the
    /// caller-supplied pseudo-clock, with no scheduler involvement.
    /// Used by sampled replay to fast-forward between representative
    /// intervals. Returns the estimated completion cycle of the demand
    /// access (hit latency at whichever level served it, or the real
    /// DRAM completion) and whether it went all the way to memory —
    /// the warmup driver replays dependence chains and MSHR occupancy
    /// from these, so pseudo-time stalls where the timed core stalls.
    pub(crate) fn functional_access(
        &mut self,
        core: usize,
        rec: &TraceRecord,
        cycle: u64,
    ) -> (u64, bool) {
        let is_write = rec.kind == AccessKind::Store;
        let line = self.mmu.translate(core, rec.vaddr);
        self.l1d[core].stats.demand_accesses += 1;
        if let Some(ready) = self.l1d[core].lookup(line, is_write, false) {
            self.functional_trigger_l1(core, rec.pc, line, true, cycle);
            return ((cycle + self.l1_latency).max(ready), false);
        }
        self.l1d[core].stats.demand_misses += 1;
        self.functional_trigger_l1(core, rec.pc, line, false, cycle);
        self.l2[core].stats.demand_accesses += 1;
        let t_l2 = cycle + self.l1_latency;
        let l2_res = self.l2[core].lookup(line, false, false);
        self.functional_trigger_l2(core, rec.pc, line, l2_res.is_some(), cycle);
        let (done, dram) = match l2_res {
            Some(ready) => ((t_l2 + self.l2_latency).max(ready), false),
            None => {
                self.l2[core].stats.demand_misses += 1;
                let r =
                    self.functional_access_llc(core, rec.pc, line, false, t_l2 + self.l2_latency);
                self.functional_fill_l2(core, line, false, r.0);
                r
            }
        };
        self.functional_fill_l1(core, line, is_write, false, done);
        (done, dram)
    }

    /// Reset all measurement counters (used at the warmup boundary).
    fn reset_stats(&mut self) {
        for c in &mut self.l1d {
            c.stats = Default::default();
        }
        for c in &mut self.l2 {
            c.stats = Default::default();
        }
        self.llc.stats = Default::default();
        self.camat.reset_totals();
        if let Some(noc) = &mut self.noc {
            noc.epoch_rebase();
        }
    }

    /// The mesh-NoC timing state, when enabled.
    pub fn noc(&self) -> Option<&NocState> {
        self.noc.as_ref()
    }
}

/// Which scheduling kernel drives [`System::run`].
///
/// Both kernels execute the identical per-core retire/issue semantics;
/// the event-driven kernel merely skips provable no-op work. Results
/// (final stats, epoch telemetry, obstruction vectors) are byte-identical
/// by construction, and the differential tests in `chrome-bench` assert
/// it for every policy, workload class and core count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// Cycle-skipping scheduler: per-core next-activity watermarks, a
    /// linear min-scan over ≤ 16 cores, and direct clock jumps to
    /// `min(next event, next epoch boundary)`.
    #[default]
    EventDriven,
    /// Naive uniform stepping: touch every core every cycle. Kept as
    /// the ground-truth reference for differential testing and as the
    /// denominator of the throughput benchmark's speedup metric.
    Reference,
}

/// One representative interval of a sampled-replay plan (see
/// [`System::run_sampled`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampledInterval {
    /// Per-core absolute trace fetch positions (instructions pulled,
    /// counting non-memory runs) at which the measured interval starts.
    /// Per-core rather than global because cores drift: each core's
    /// position comes from its own manifest interval sums.
    pub start: Vec<u64>,
    /// Detailed-but-unmeasured lead-in instructions per core, simulated
    /// with full timing after the functional fast-forward so MSHR, DRAM
    /// and ROB state are realistic when measurement begins.
    pub ramp: u64,
    /// Measured instructions per core.
    pub detail: u64,
}

/// Per-interval metrics from a functional-only profiling pass (see
/// [`System::run_functional_profile`]): the cheap full-coverage
/// auxiliary series that sampled reconstruction uses as control
/// variates for its detailed measurements.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FunctionalProfile {
    /// Pseudo-clock cycles each aligned interval took.
    pub cycles: Vec<u64>,
    /// LLC demand misses in each aligned interval.
    pub llc_misses: Vec<u64>,
}

/// The complete simulated machine.
pub struct System {
    cfg: SimConfig,
    cores: Vec<Core>,
    hier: MemHierarchy,
    cycle: u64,
    next_epoch: u64,
    obstructed_epochs: Vec<u64>,
    total_epochs: u64,
    telemetry: TelemetrySink,
    /// LLC counter snapshot at the last telemetry epoch boundary, so
    /// epoch records carry per-epoch deltas that sum to the final stats.
    epoch_base: CacheStats,
    epoch_seq: u64,
    /// Per-core conservative wake-up cycles (the event-driven kernel's
    /// next-event array). `next_event[i] > c` proves stepping core `i`
    /// at cycle `c` would be a no-op.
    next_event: Vec<u64>,
    /// Cached `min(next_event)`, refreshed by every stepping pass. When
    /// it exceeds the current cycle the kernel jumps in O(1) without
    /// rescanning the array (jumps never change any watermark).
    min_event: u64,
    /// Reused buffer for per-core epoch samples, so epoch boundaries do
    /// not allocate.
    epoch_scratch: Vec<CamatEpoch>,
    /// Threads stepping cores within this simulation (1 = the classic
    /// sequential kernels). See [`System::set_step_workers`].
    step_workers: usize,
    /// Persistent worker pool backing the parallel decode phase;
    /// present exactly when `step_workers > 1`.
    pool: Option<chrome_noc::DetPool>,
    /// Per-core decoded issue plans for the parallel kernels.
    plans: Vec<IssuePlan>,
    /// Rotation-ordered due-core scratch for the parallel event kernel.
    due: Vec<usize>,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("cores", &self.cores.len())
            .field("cycle", &self.cycle)
            .field("policy", &self.hier.llc.policy.name())
            .finish_non_exhaustive()
    }
}

impl System {
    /// Build a system with the built-in LRU policy at the LLC.
    ///
    /// # Panics
    ///
    /// Panics if `traces.len() != cfg.cores`.
    pub fn new(cfg: SimConfig, traces: Vec<Box<dyn TraceSource>>) -> Self {
        Self::with_policy(cfg, traces, BuiltinLru::new())
    }

    /// Build a system with an explicit LLC management policy.
    ///
    /// # Panics
    ///
    /// Panics if `traces.len() != cfg.cores`.
    pub fn with_policy(
        cfg: SimConfig,
        traces: Vec<Box<dyn TraceSource>>,
        policy: impl Into<PolicySlot>,
    ) -> Self {
        assert_eq!(traces.len(), cfg.cores, "one trace per core required");
        let hier = MemHierarchy::new(&cfg, policy.into());
        let cores = traces
            .into_iter()
            .map(|t| Core::new(t, cfg.rob_size, cfg.width))
            .collect();
        let next_epoch = cfg.epoch_cycles;
        let n = cfg.cores;
        System {
            cfg,
            cores,
            hier,
            cycle: 0,
            next_epoch,
            obstructed_epochs: Vec::new(),
            total_epochs: 0,
            telemetry: TelemetrySink::noop(),
            epoch_base: CacheStats::default(),
            epoch_seq: 0,
            next_event: vec![0; n],
            min_event: 0,
            epoch_scratch: Vec::with_capacity(n),
            step_workers: 1,
            pool: None,
            plans: Vec::new(),
            due: Vec::new(),
        }
    }

    /// Step cores with `workers` threads inside this one simulation
    /// (1 = sequential, the default). The parallel kernels split each
    /// stepped cycle into a decode phase (retire + issue-plan, all
    /// core-private state, fanned across a work-stealing pool) and an
    /// apply phase (every shared-hierarchy effect, replayed
    /// sequentially in the exact rotation order of the sequential
    /// kernels), so results are byte-identical at any worker count —
    /// the `noc_equiv` differential suite in `chrome-bench` asserts it.
    pub fn set_step_workers(&mut self, workers: usize) {
        let workers = workers.max(1);
        self.step_workers = workers;
        if workers > 1 {
            self.pool = Some(chrome_noc::DetPool::new(workers));
            self.plans = (0..self.cores.len())
                .map(|_| IssuePlan::default())
                .collect();
        } else {
            self.pool = None;
            self.plans.clear();
        }
    }

    /// Configured intra-simulation stepping threads.
    pub fn step_workers(&self) -> usize {
        self.step_workers
    }

    /// Attach a telemetry sink; it is forwarded to the LLC and the
    /// management policy so decision events flow into the same buffers
    /// as the epoch series.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.hier.llc.set_telemetry(sink.clone());
        self.hier.sink = sink.clone();
        self.telemetry = sink;
    }

    /// The attached telemetry sink (no-op by default).
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.telemetry
    }

    /// Enable Fig. 2 evicted-unused tracking on the LLC.
    pub fn enable_unused_tracking(&mut self) {
        self.hier.llc.enable_unused_tracking();
    }

    /// Name of the active LLC policy.
    pub fn policy_name(&self) -> &str {
        self.hier.llc.policy.name()
    }

    /// Turn on per-decision audit recording in the LLC policy, tagged
    /// `stream` and bounded to `cap` records. Returns false when the
    /// policy keeps no decision stream (heuristics).
    pub fn enable_audit(&mut self, stream: u32, cap: usize) -> bool {
        self.hier.llc.policy.enable_audit(stream, cap)
    }

    /// The recorded audit trail as a binary blob (empty unless
    /// [`System::enable_audit`] was called on an auditable policy).
    pub fn audit_bytes(&self) -> Vec<u8> {
        self.hier
            .llc
            .policy
            .audit()
            .map(|log| log.to_bytes())
            .unwrap_or_default()
    }

    /// Immutable access to the memory hierarchy (stats, DRAM, feedback).
    pub fn hierarchy(&self) -> &MemHierarchy {
        &self.hier
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// One cycle of the naive reference kernel: every core retires and
    /// issues, unconditionally. Ground truth for the event-driven
    /// scheduler. Always returns `true` (a cycle was stepped).
    fn step_reference(&mut self) -> bool {
        if self.pool.is_some() {
            return self.step_reference_parallel();
        }
        let cycle = self.cycle;
        let n = self.cores.len();
        let start = cycle as usize % n;
        let hier = &mut self.hier;
        for k in 0..n {
            // rotation `(k + cycle) % n` without the per-core modulo
            let i = start + k;
            let i = if i >= n { i - n } else { i };
            let core = &mut self.cores[i];
            core.retire(cycle);
            core.issue(cycle, |rec, t| hier.demand_access(i, rec, t));
        }
        self.cycle += 1;
        if self.cycle >= self.next_epoch {
            self.end_epoch();
        }
        true
    }

    /// Phase A of the parallel kernels: retire and decode an issue plan
    /// for each listed core, fanned across the pool. Sound because both
    /// calls touch only core-private state (ROB head, trace cursor,
    /// front-end queue) — instruction *selection* never depends on what
    /// other cores do this cycle, only completion *times* do, and those
    /// are assigned later in phase B. `due` picks between the full core
    /// set (reference kernel) and the rotation-ordered due list (event
    /// kernel).
    fn plan_phase(&mut self, cycle: u64, due: bool) {
        struct Ptr<T>(*mut T);
        // SAFETY: the pool claims each task index exactly once per
        // round, and task `i` dereferences only offset `i` (or the
        // distinct due entry `due[k]`), so all `&mut` are disjoint.
        unsafe impl<T> Sync for Ptr<T> {}
        let pool = self.pool.as_mut().expect("parallel phase without a pool");
        let n = self.cores.len();
        let cores = Ptr(self.cores.as_mut_ptr());
        let plans = Ptr(self.plans.as_mut_ptr());
        // capture the Sync wrappers, not their raw-pointer fields
        let (cores, plans) = (&cores, &plans);
        if due {
            let idx = &self.due;
            pool.run(idx.len(), &|k| {
                let i = idx[k];
                let core = unsafe { &mut *cores.0.add(i) };
                let plan = unsafe { &mut *plans.0.add(i) };
                core.retire(cycle);
                core.plan_issue(plan);
            });
        } else {
            pool.run(n, &|i| {
                let core = unsafe { &mut *cores.0.add(i) };
                let plan = unsafe { &mut *plans.0.add(i) };
                core.retire(cycle);
                core.plan_issue(plan);
            });
        }
    }

    /// Reference kernel, parallel flavor: phase A decodes every core's
    /// plan across the pool, phase B applies the plans sequentially in
    /// the exact rotation order of [`System::step_reference`], so every
    /// shared side effect (LLC policy updates, MSHR and DRAM traffic,
    /// MMU allocation, telemetry) happens in the identical order and
    /// the results are byte-identical to the sequential kernel.
    fn step_reference_parallel(&mut self) -> bool {
        let cycle = self.cycle;
        self.plan_phase(cycle, false);
        let n = self.cores.len();
        let start = cycle as usize % n;
        let hier = &mut self.hier;
        for k in 0..n {
            let i = start + k;
            let i = if i >= n { i - n } else { i };
            let core = &mut self.cores[i];
            core.apply_issue(cycle, &self.plans[i], |rec, t| {
                hier.demand_access(i, rec, t)
            });
        }
        self.cycle += 1;
        if self.cycle >= self.next_epoch {
            self.end_epoch();
        }
        true
    }

    /// One advance of the event-driven kernel: step exactly the cores
    /// that are due this cycle (in the same rotation order as the
    /// reference) and refresh their watermarks; if none were due, jump
    /// the clock straight to `min(next event, next epoch)`. One pass
    /// over the next-event array does both jobs — N ≤ 16 in every paper
    /// configuration, so a linear scan beats a heap.
    ///
    /// Skipped work is provably a no-op — a core with `next_event > c`
    /// has a full ROB whose head completes after `c`, so both `retire`
    /// and `issue` would leave all state untouched — which is what makes
    /// this a pure scheduling transform: the sequence of *effectful*
    /// `(core, cycle)` calls is identical to the reference kernel's.
    ///
    /// Returns `true` when a cycle was stepped, `false` on a clock jump.
    fn step_event(&mut self) -> bool {
        let cycle = self.cycle;
        if self.min_event > cycle {
            // No core can retire or issue before `min_event`; the epoch
            // boundary clamps the jump so feedback epochs still tick at
            // exactly the same cycles as the reference kernel. Jumps
            // leave every watermark untouched, so the cached minimum
            // stays exact and no scan is needed.
            self.cycle = self.min_event.min(self.next_epoch);
            if self.cycle >= self.next_epoch {
                self.end_epoch();
            }
            return false;
        }
        if self.pool.is_some() {
            return self.step_event_parallel();
        }
        let n = self.cores.len();
        let start = cycle as usize % n;
        let hier = &mut self.hier;
        let mut min_next = u64::MAX;
        for k in 0..n {
            let i = start + k;
            let i = if i >= n { i - n } else { i };
            let ev = self.next_event[i];
            if ev > cycle {
                min_next = min_next.min(ev);
                continue;
            }
            let core = &mut self.cores[i];
            core.retire(cycle);
            core.issue(cycle, |rec, t| hier.demand_access(i, rec, t));
            let next = core.next_activity(cycle + 1);
            self.next_event[i] = next;
            min_next = min_next.min(next);
        }
        // `min_event <= cycle` means min(next_event) <= cycle, so at
        // least one core was due: this pass always steps the clock.
        self.min_event = min_next;
        self.cycle = cycle + 1;
        if self.cycle >= self.next_epoch {
            self.end_epoch();
        }
        true
    }

    /// Event-driven kernel, parallel flavor: gather the due set in the
    /// sequential kernel's rotation order, decode the due plans across
    /// the pool, then apply and refresh watermarks sequentially. The
    /// due-set condition and the watermark math are exactly those of
    /// [`System::step_event`]; only the caller has already handled the
    /// clock-jump case.
    fn step_event_parallel(&mut self) -> bool {
        let cycle = self.cycle;
        let n = self.cores.len();
        let start = cycle as usize % n;
        let mut min_next = u64::MAX;
        self.due.clear();
        for k in 0..n {
            let i = start + k;
            let i = if i >= n { i - n } else { i };
            let ev = self.next_event[i];
            if ev > cycle {
                min_next = min_next.min(ev);
            } else {
                self.due.push(i);
            }
        }
        self.plan_phase(cycle, true);
        let hier = &mut self.hier;
        for k in 0..self.due.len() {
            let i = self.due[k];
            let core = &mut self.cores[i];
            core.apply_issue(cycle, &self.plans[i], |rec, t| {
                hier.demand_access(i, rec, t)
            });
            let next = core.next_activity(cycle + 1);
            self.next_event[i] = next;
            min_next = min_next.min(next);
        }
        self.min_event = min_next;
        self.cycle = cycle + 1;
        if self.cycle >= self.next_epoch {
            self.end_epoch();
        }
        true
    }

    /// Advance the simulation by one kernel step (one cycle, or one
    /// clock jump under the event-driven kernel). Returns `true` when a
    /// cycle was stepped — only then can any core have retired
    /// instructions.
    #[inline]
    fn advance(&mut self, kernel: Kernel) -> bool {
        match kernel {
            Kernel::EventDriven => self.step_event(),
            Kernel::Reference => self.step_reference(),
        }
    }

    fn end_epoch(&mut self) {
        self.next_epoch += self.cfg.epoch_cycles;
        // T_mem is the characteristic main-memory latency (paper §IV-C);
        // using the load-inflated measured average would make obstruction
        // undetectable precisely when contention is worst.
        let t_mem = self.hier.dram.unloaded_latency();
        let mut per_core = std::mem::take(&mut self.epoch_scratch);
        self.hier
            .camat
            .end_epoch_into(self.next_epoch, &mut per_core);
        let fb = &mut self.hier.feedback;
        fb.t_mem = t_mem;
        fb.epoch += 1;
        for (i, e) in per_core.iter().enumerate() {
            fb.camat_llc[i] = e.camat;
            fb.obstructed[i] = e.accesses > 0 && e.camat > t_mem;
        }
        self.total_epochs += 1;
        if self.obstructed_epochs.len() == self.cores.len() {
            for (i, o) in self.obstructed_epochs.iter_mut().enumerate() {
                if fb.obstructed[i] {
                    *o += 1;
                }
            }
        }
        // Split borrows: hand the feedback to the policy without cloning
        // its per-core vectors.
        let MemHierarchy { llc, feedback, .. } = &mut self.hier;
        llc.policy.on_epoch(feedback);
        self.record_epoch(&per_core);
        self.epoch_scratch = per_core;
    }

    /// Append one epoch record to the telemetry sink (free when
    /// telemetry is disabled). `per_core` is the [`CamatEpoch`] slice of
    /// the epoch being closed; LLC counters are recorded as deltas
    /// against the previous boundary so the per-epoch columns sum
    /// exactly to the end-of-run [`CacheStats`].
    fn record_epoch(&mut self, per_core: &[CamatEpoch]) {
        if !cfg!(feature = "telemetry") || !self.telemetry.is_enabled() {
            return;
        }
        let t_mem = self.hier.dram.unloaded_latency();
        let llc = self.hier.llc.stats;
        let base = &self.epoch_base;
        let (dram_queue_avg, dram_queue_max) = self.hier.dram.bank_backlog(self.cycle);
        let (noc_slice_accesses, noc_link_busy) = match self.hier.noc.as_mut() {
            Some(noc) => noc.epoch_deltas(),
            None => (Vec::new(), Vec::new()),
        };
        let rec = EpochRecord {
            epoch: self.epoch_seq,
            end_cycle: self.cycle,
            camat: per_core.iter().map(|e| e.camat).collect(),
            amat: per_core.iter().map(|e| e.amat).collect(),
            obstructed: per_core
                .iter()
                .map(|e| e.accesses > 0 && e.camat > t_mem)
                .collect(),
            llc_active: per_core.iter().map(|e| e.active_cycles).collect(),
            llc_accesses: per_core.iter().map(|e| e.accesses).collect(),
            l1_mshr_occupancy: self
                .hier
                .l1d
                .iter()
                .map(|c| c.mshr.live_occupancy(self.cycle) as u32)
                .collect(),
            l2_mshr_occupancy: self
                .hier
                .l2
                .iter()
                .map(|c| c.mshr.live_occupancy(self.cycle) as u32)
                .collect(),
            demand_accesses: llc.demand_accesses - base.demand_accesses,
            demand_misses: llc.demand_misses - base.demand_misses,
            bypasses: llc.bypasses - base.bypasses,
            evictions: llc.evictions - base.evictions,
            writebacks: llc.writebacks - base.writebacks,
            mshr_occupancy: self.hier.llc.mshr.live_occupancy(self.cycle) as u32,
            mshr_capacity: self.hier.llc.mshr.capacity() as u32,
            dram_queue_avg,
            dram_queue_max,
            noc_slice_accesses,
            noc_link_busy,
            policy: self.hier.llc.policy.epoch_probe(),
        };
        self.telemetry.emit(
            self.cycle,
            0,
            EventKind::EpochBoundary {
                epoch: self.epoch_seq,
            },
        );
        self.telemetry.push_epoch(rec);
        self.epoch_base = llc;
        self.epoch_seq += 1;
    }

    /// Run `warmup` instructions per core (unmeasured), then run until
    /// every core has retired `instructions` more, under the default
    /// event-driven kernel. Returns the measured results.
    ///
    /// # Panics
    ///
    /// Panics if `instructions` is zero.
    pub fn run(&mut self, instructions: u64, warmup: u64) -> SimResults {
        self.run_with_kernel(instructions, warmup, Kernel::default())
    }

    /// [`System::run`] with an explicit scheduling [`Kernel`]. The
    /// reference kernel exists for differential testing and as the
    /// throughput benchmark's speedup denominator; both produce
    /// identical [`SimResults`] and telemetry.
    ///
    /// # Panics
    ///
    /// Panics if `instructions` is zero.
    pub fn run_with_kernel(
        &mut self,
        instructions: u64,
        warmup: u64,
        kernel: Kernel,
    ) -> SimResults {
        assert!(instructions > 0, "instruction quota must be positive");
        // Warmup phase. The quota is re-checked after every stepped
        // cycle, so the last action before the measurement boundary is
        // always the quota-meeting step — a clock jump retires nothing
        // and thus can never be the final advance.
        while self.cores.iter().any(|c| c.retired < warmup) {
            while !self.advance(kernel) {}
        }
        // Measurement boundary: warmup telemetry is discarded so the
        // epoch series covers exactly the measured region.
        self.telemetry.clear();
        self.epoch_seq = 0;
        self.run_measured(instructions, kernel)
    }

    /// Reset measurement counters at the current cycle, run until every
    /// core retires `instructions` more, and collect results. Shared by
    /// [`System::run_with_kernel`] (once, after timed warmup) and
    /// [`System::run_sampled`] (once per representative interval).
    /// Telemetry is *not* cleared here, so a sampled run's epoch series
    /// spans all of its measured intervals.
    fn run_measured(&mut self, instructions: u64, kernel: Kernel) -> SimResults {
        assert!(instructions > 0, "instruction quota must be positive");
        self.hier.reset_stats();
        self.epoch_base = CacheStats::default();
        let dram_reads0 = self.hier.dram.reads;
        let dram_writes0 = self.hier.dram.writes;
        self.obstructed_epochs = vec![0; self.cores.len()];
        self.total_epochs = 0;
        for core in &mut self.cores {
            core.measure_start_retired = core.retired;
            core.measure_start_rob_lag = core.rob_release_lag;
            core.measure_start_cycle = self.cycle;
            core.done_cycle = None;
        }
        // Measured phase: run until all cores meet their quota; cores
        // that finish early keep running to preserve contention. Quota
        // bookkeeping only runs after stepped cycles — a clock jump
        // retires nothing, so it cannot change any core's done state.
        loop {
            if !self.advance(kernel) {
                continue;
            }
            let cycle = self.cycle;
            let mut all_done = true;
            for core in &mut self.cores {
                if core.done_cycle.is_none() {
                    if core.measured_instructions() >= instructions {
                        core.done_cycle = Some(cycle);
                    } else {
                        all_done = false;
                    }
                }
            }
            if all_done {
                break;
            }
        }
        // Close the still-open partial epoch so the telemetry series
        // accounts for every measured access.
        if cfg!(feature = "telemetry") && self.telemetry.is_enabled() {
            let mut partial = std::mem::take(&mut self.epoch_scratch);
            self.hier.camat.epoch_snapshot_into(&mut partial);
            self.record_epoch(&partial);
            self.epoch_scratch = partial;
        }
        self.collect_results(instructions, dram_reads0, dram_writes0)
    }

    /// Functionally fast-forward every core's trace cursor to the given
    /// absolute per-core fetch position (no-op for cores already past
    /// it). Every record on the way updates caches, policy state,
    /// prefetchers and DRAM; in-flight timing state (ROB contents,
    /// dependence chains) is discarded at the switch.
    ///
    /// Each core carries a *pseudo-clock* that starts at the shared
    /// clock and paces itself the way the timed front end does: between
    /// stalls, instructions issue at fetch-width speed, and the stalls
    /// themselves are replayed from completion estimates — a ROB-window
    /// clamp on the oldest in-flight load, `dep_prev` serialization on
    /// the producer's completion at whatever level served it, and
    /// L1-MSHR occupancy delaying the access itself. Average CPI then
    /// *emerges* from the machine model instead of being imposed, and —
    /// crucially — issue stays bursty: stall-then-drain spikes are what
    /// push DRAM bank queues past the memory-controller shed threshold,
    /// so a smooth average-CPI clock under-sheds prefetches by an order
    /// of magnitude on stall-heavy workloads. Cores are interleaved
    /// lowest-clock-first, so the DRAM model sees demand and prefetch
    /// traffic at realistic density and ordering. At the end the shared
    /// clock jumps to the farthest pseudo-clock, so the following
    /// detailed ramp continues from DRAM queues that are genuinely warm
    /// rather than fossilized in the past.
    ///
    /// Learned policies keep training through the fast-forward:
    /// freezing them was measured to be far worse (greedy decisions
    /// over a virgin/stale Q-table degenerate to a single tie-rank
    /// action for the whole gap, and the policy arrives at the
    /// measured segment untrained relative to the full run).
    fn functional_warm_to(&mut self, targets: &[u64]) {
        let n = self.cores.len();
        let warmed: Vec<bool> = (0..n).map(|i| self.cores[i].fetched < targets[i]).collect();
        let width = self.cfg.width as f64;
        let rob_size = self.cfg.rob_size as u64;
        let mut ft: Vec<f64> = vec![self.cycle as f64; n];
        // In-flight loads per core as (fetch position, completion):
        // the in-order retire window. Fetch cannot pass an incomplete
        // load by more than the ROB size — the only front-end stall the
        // timed core has, replayed here as a pseudo-clock jump.
        let mut rob: Vec<std::collections::VecDeque<(u64, u64)>> = vec![Default::default(); n];
        // Outstanding DRAM-bound misses per core, capped at the L1 MSHR
        // capacity. As in timed `mshr_acquire`, a full file delays the
        // *access* (not the front end) to the oldest completion.
        let mshr_cap: Vec<usize> = (0..n).map(|i| self.hier.l1d[i].mshr.capacity()).collect();
        let mut mshr: Vec<std::collections::VecDeque<u64>> = vec![Default::default(); n];
        // Completion of each core's most recent load, for `dep_prev`
        // serialization — pointer-chase chains run at MLP 1 in timed
        // mode and must do so here too.
        let mut last_load: Vec<u64> = vec![0; n];
        loop {
            // next record comes from the core whose pseudo-clock is
            // furthest behind (deterministic: ties break by index)
            let mut pick = None;
            let mut best = f64::INFINITY;
            for i in 0..n {
                if self.cores[i].fetched < targets[i] && ft[i] < best {
                    best = ft[i];
                    pick = Some(i);
                }
            }
            let Some(i) = pick else { break };
            let core = &mut self.cores[i];
            let rec = core.take_pending().unwrap_or_else(|| core.fetch_record());
            let pos = core.fetched;
            // Retire completed loads; stall fetch on the ROB window.
            while let Some(&(p, done)) = rob[i].front() {
                if (done as f64) <= ft[i] {
                    rob[i].pop_front();
                } else if p + rob_size <= pos {
                    ft[i] = done as f64;
                    rob[i].pop_front();
                } else {
                    break;
                }
            }
            // The leading non-memory run issues at width per cycle.
            ft[i] += f64::from(rec.nonmem_before) / width;
            let mut at = ft[i];
            if rec.dep_prev {
                at = at.max(last_load[i] as f64);
            }
            while mshr[i].front().is_some_and(|&d| (d as f64) <= at) {
                mshr[i].pop_front();
            }
            if mshr[i].len() >= mshr_cap[i] {
                let oldest = mshr[i].pop_front().unwrap();
                at = at.max(oldest as f64);
            }
            let (done, dram) = self.hier.functional_access(i, &rec, at as u64);
            if dram {
                mshr[i].push_back(done);
            }
            if rec.kind == AccessKind::Load {
                last_load[i] = done;
                rob[i].push_back((pos, done));
            }
            ft[i] += 1.0 / width;
        }
        for (i, core) in self.cores.iter_mut().enumerate() {
            if warmed[i] {
                core.reset_timing();
            }
        }

        // Rebase the shared clock onto pseudo-time so the detailed ramp
        // runs against live DRAM queues instead of long-drained ones.
        let end = ft.iter().fold(self.cycle as f64, |a, &b| a.max(b)) as u64;
        self.cycle = end;
        // No epoch machinery ran during the gap; realign the next
        // boundary to the epoch grid so the ramp doesn't replay a burst
        // of empty feedback epochs.
        if self.cycle >= self.next_epoch {
            let e = self.cfg.epoch_cycles;
            self.next_epoch = (self.cycle / e + 1) * e;
        }
        // Pre-switch watermarks may lie arbitrarily far in the future
        // (full-ROB stalls that no longer exist); after the switch every
        // core is immediately due.
        self.next_event.fill(self.cycle);
        self.min_event = self.cycle;
    }

    /// Run detailed (timed, unmeasured) simulation until every core's
    /// fetch cursor reaches its target position — the timing ramp that
    /// re-establishes MSHR, DRAM-queue and ROB state after a functional
    /// fast-forward.
    fn run_detailed_until(&mut self, targets: &[u64], kernel: Kernel) {
        while self.cores.iter().zip(targets).any(|(c, &t)| c.fetched < t) {
            while !self.advance(kernel) {}
        }
    }

    /// Sampled replay: for each representative interval, functionally
    /// fast-forward to `start - ramp`, run a detailed-but-unmeasured
    /// timing ramp to `start`, then measure `detail` instructions per
    /// core. Returns one [`SimResults`] per interval, in plan order;
    /// full-run metrics are reconstructed by weighting them with the
    /// plan's cluster weights (see `chrome-simpoint`).
    ///
    /// Intervals must be sorted by ascending start position (traces are
    /// forward-only). Overlapping phases degrade gracefully: a core
    /// already past a functional or ramp target simply skips it.
    ///
    /// # Panics
    ///
    /// Panics if the plan is empty, an interval's `start` length does
    /// not match the core count, its `detail` is zero, or start
    /// positions are not non-decreasing.
    pub fn run_sampled(&mut self, plan: &[SampledInterval], kernel: Kernel) -> Vec<SimResults> {
        assert!(
            !plan.is_empty(),
            "sampled plan must have at least one interval"
        );
        for w in plan.windows(2) {
            assert!(
                w[0].start.iter().zip(&w[1].start).all(|(a, b)| a <= b),
                "sampled intervals must be sorted by start position"
            );
        }
        self.telemetry.clear();
        self.epoch_seq = 0;
        let mut out = Vec::with_capacity(plan.len());
        let mut warm_targets = Vec::with_capacity(self.cores.len());
        for seg in plan {
            assert_eq!(
                seg.start.len(),
                self.cores.len(),
                "one start position per core"
            );
            warm_targets.clear();
            warm_targets.extend(seg.start.iter().map(|s| s.saturating_sub(seg.ramp)));
            self.functional_warm_to(&warm_targets);
            self.run_detailed_until(&seg.start, kernel);
            out.push(self.run_measured(seg.detail, kernel));
        }
        out
    }

    /// Functional-only profiling pass: walk every aligned interval with
    /// the functional model (no detailed simulation at all), recording
    /// per-interval pseudo-cycles and LLC demand misses. These are the
    /// *control variates* sampled reconstruction pairs with detailed
    /// measurements: the functional model tracks per-interval metric
    /// *variation* far more tightly than any clustering of summary
    /// features, so estimating `full = functional_total + weighted
    /// mean(detailed − functional)` over the sampled intervals removes
    /// most of the stratified estimator's selection variance.
    ///
    /// `boundaries[c]` holds core `c`'s cumulative fetch positions at
    /// every aligned interval boundary (`n + 1` entries starting at 0).
    /// Cycles are shared-clock deltas — exact for single-core traces,
    /// a lowest-clock-sync approximation across cores.
    ///
    /// # Panics
    ///
    /// Panics if `boundaries` is empty or disagrees with the core count.
    pub fn run_functional_profile(&mut self, boundaries: &[Vec<u64>]) -> FunctionalProfile {
        assert_eq!(
            boundaries.len(),
            self.cores.len(),
            "one boundary list per core"
        );
        let n = boundaries.iter().map(|b| b.len()).min().unwrap_or(0);
        assert!(n > 1, "profile needs at least one aligned interval");
        let mut cycles = Vec::with_capacity(n - 1);
        let mut llc_misses = Vec::with_capacity(n - 1);
        let mut targets = vec![0u64; self.cores.len()];
        for j in 1..n {
            for (t, b) in targets.iter_mut().zip(boundaries) {
                *t = b[j];
            }
            let cycle0 = self.cycle;
            let miss0 = self.hier.llc.stats.demand_misses;
            self.functional_warm_to(&targets);
            cycles.push(self.cycle - cycle0);
            llc_misses.push(self.hier.llc.stats.demand_misses - miss0);
        }
        FunctionalProfile { cycles, llc_misses }
    }

    fn collect_results(
        &self,
        instructions: u64,
        dram_reads0: u64,
        dram_writes0: u64,
    ) -> SimResults {
        let per_core = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, core)| {
                let (active, accesses) = self.hier.camat.totals(i);
                CoreStats {
                    instructions,
                    cycles: core
                        .done_cycle
                        .expect("all cores done")
                        .saturating_sub(core.measure_start_cycle)
                        .max(1),
                    llc_accesses: accesses,
                    llc_active_cycles: active,
                    llc_latency_cycles: self.hier.camat.total_latency(i),
                    rob_release_lag: core.measured_rob_release_lag(),
                    obstructed_epochs: self.obstructed_epochs.get(i).copied().unwrap_or(0),
                    total_epochs: self.total_epochs,
                }
            })
            .collect::<Vec<_>>();
        let total_cycles = per_core.iter().map(|c| c.cycles).max().unwrap_or(0);
        SimResults {
            l1d: self.hier.l1d.iter().map(|c| c.stats).collect(),
            l2: self.hier.l2.iter().map(|c| c.stats).collect(),
            llc: self.hier.llc.stats,
            dram_reads: self.hier.dram.reads - dram_reads0,
            dram_writes: self.hier.dram.writes - dram_writes0,
            dram_avg_latency: self.hier.dram.avg_read_latency(),
            total_cycles,
            evicted_unused: self.hier.llc.unused_tracker.summary(),
            bypassed_outcome: self.hier.llc.bypass_tracker.summary(),
            per_core,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{RandomSource, StridedSource};

    fn boxed(t: impl TraceSource + 'static) -> Box<dyn TraceSource> {
        Box::new(t)
    }

    #[test]
    fn single_core_strided_runs() {
        let cfg = SimConfig::small_test(1);
        let mut sys = System::new(cfg, vec![boxed(StridedSource::new(0, 64, 1 << 16, 2))]);
        let r = sys.run(20_000, 2_000);
        assert_eq!(r.per_core.len(), 1);
        assert!(r.per_core[0].ipc() > 0.1, "ipc = {}", r.per_core[0].ipc());
        assert!(r.per_core[0].ipc() <= 6.0);
    }

    #[test]
    fn cache_friendly_beats_cache_hostile() {
        // A tiny working set (fits in L1) must be much faster than a
        // random scan over a large one.
        let cfg = SimConfig::small_test(1);
        let mut friendly =
            System::new(cfg.clone(), vec![boxed(StridedSource::new(0, 64, 2048, 2))]);
        let rf = friendly.run(20_000, 2_000);
        let mut hostile = System::new(cfg, vec![boxed(RandomSource::new(0, 64 << 20, 2, 9))]);
        let rh = hostile.run(20_000, 2_000);
        assert!(
            rf.per_core[0].ipc() > 2.0 * rh.per_core[0].ipc(),
            "friendly {} vs hostile {}",
            rf.per_core[0].ipc(),
            rh.per_core[0].ipc()
        );
    }

    #[test]
    fn multicore_contention_slows_cores() {
        let mk = || boxed(RandomSource::new(0, 32 << 20, 1, 5));
        let mut alone = System::new(SimConfig::small_test(1), vec![mk()]);
        let ra = alone.run(10_000, 1_000);
        let cfg4 = SimConfig::small_test(4);
        let mut shared = System::new(cfg4, (0..4).map(|_| mk()).collect());
        let rs = shared.run(10_000, 1_000);
        assert!(
            rs.per_core[0].ipc() < ra.per_core[0].ipc() * 1.05,
            "shared {} vs alone {}",
            rs.per_core[0].ipc(),
            ra.per_core[0].ipc()
        );
    }

    #[test]
    fn llc_sees_traffic_and_camat_is_positive() {
        let cfg = SimConfig::small_test(1);
        let mut sys = System::new(cfg, vec![boxed(RandomSource::new(0, 32 << 20, 1, 3))]);
        let r = sys.run(20_000, 1_000);
        assert!(r.llc.demand_accesses > 0);
        assert!(r.per_core[0].llc_accesses > 0);
        assert!(r.per_core[0].camat_llc() > 0.0);
    }

    #[test]
    fn prefetcher_reduces_misses_on_streams() {
        let mut cfg = SimConfig::small_test(1);
        cfg.prefetchers = crate::config::PrefetcherConfig::none();
        let trace = || boxed(StridedSource::new(0, 64, 8 << 20, 2));
        let mut nopf = System::new(cfg.clone(), vec![trace()]);
        let r0 = nopf.run(30_000, 2_000);
        cfg.prefetchers = crate::config::PrefetcherConfig::default_paper();
        let mut withpf = System::new(cfg, vec![trace()]);
        let r1 = withpf.run(30_000, 2_000);
        assert!(
            r1.per_core[0].ipc() > r0.per_core[0].ipc(),
            "prefetch {} vs none {}",
            r1.per_core[0].ipc(),
            r0.per_core[0].ipc()
        );
    }

    #[test]
    fn determinism() {
        let run = || {
            let cfg = SimConfig::small_test(2);
            let traces = vec![
                boxed(RandomSource::new(0, 16 << 20, 1, 7)),
                boxed(StridedSource::new(0, 128, 1 << 20, 2)),
            ];
            let mut sys = System::new(cfg, traces);
            let r = sys.run(10_000, 1_000);
            (
                r.per_core[0].cycles,
                r.per_core[1].cycles,
                r.llc.demand_misses,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn epochs_advance() {
        let cfg = SimConfig::small_test(1);
        let mut sys = System::new(cfg, vec![boxed(RandomSource::new(0, 32 << 20, 1, 3))]);
        let r = sys.run(30_000, 1_000);
        assert!(r.per_core[0].total_epochs > 0, "epochs should tick");
    }

    #[test]
    #[should_panic(expected = "one trace per core")]
    fn trace_count_mismatch_panics() {
        let cfg = SimConfig::small_test(2);
        let _ = System::new(cfg, vec![boxed(StridedSource::new(0, 64, 1024, 0))]);
    }

    #[test]
    fn store_heavy_workload_produces_dram_writes() {
        struct Stores {
            pos: u64,
        }
        impl TraceSource for Stores {
            fn next_record(&mut self) -> TraceRecord {
                self.pos += 64;
                // alternate store and load over a big region: dirty lines
                // eventually wash out of the hierarchy as DRAM writes
                if self.pos.is_multiple_of(128) {
                    TraceRecord::store(0x400, self.pos % (64 << 20), 1)
                } else {
                    TraceRecord::load(0x404, self.pos % (64 << 20), 1)
                }
            }
            fn name(&self) -> &str {
                "stores"
            }
        }
        let cfg = SimConfig::small_test(1);
        let mut sys = System::new(cfg, vec![boxed(Stores { pos: 0 })]);
        let r = sys.run(40_000, 4_000);
        assert!(r.dram_writes > 0, "dirty evictions must reach DRAM");
        assert!(r.llc.writebacks > 0 || r.l2[0].writebacks > 0);
    }

    #[test]
    fn obstruction_flags_fire_for_serialized_miss_chains() {
        // Obstruction is a *concurrency* judgement: a pointer-chasing
        // core (no MLP) pays the full LLC-and-beyond latency per access,
        // so its C-AMAT(LLC) exceeds T_mem; a high-MLP core does not.
        struct Chase {
            pos: u64,
        }
        impl TraceSource for Chase {
            fn next_record(&mut self) -> TraceRecord {
                self.pos = crate::types::mix64(self.pos) % (1 << 19);
                TraceRecord::dep_load(0x500, self.pos * 64, 0)
            }
            fn name(&self) -> &str {
                "chase"
            }
        }
        let mut cfg = SimConfig::small_test(2);
        cfg.epoch_cycles = 20_000;
        cfg.prefetchers = crate::config::PrefetcherConfig::none();
        let traces: Vec<Box<dyn TraceSource>> = vec![
            boxed(Chase { pos: 1 }),
            boxed(RandomSource::new(0, 32 << 20, 0, 11)),
        ];
        let mut sys = System::new(cfg, traces);
        let r = sys.run(15_000, 1_000);
        assert!(
            r.per_core[0].obstructed_epochs > 0,
            "serialized chaser should be LLC-obstructed (camat={:.0})",
            r.per_core[0].camat_llc()
        );
    }

    #[test]
    fn compute_bound_core_is_never_obstructed() {
        // a tiny working set hits in L1: C-AMAT(LLC) ~ 0
        let cfg = SimConfig::small_test(1);
        let mut sys = System::new(cfg, vec![boxed(StridedSource::new(0, 64, 1024, 8))]);
        let r = sys.run(30_000, 2_000);
        assert_eq!(r.per_core[0].obstructed_epochs, 0);
    }

    #[test]
    fn prefetches_are_shed_under_saturation() {
        let cfg = SimConfig::small_test(2);
        let traces = (0..2)
            .map(|i| boxed(StridedSource::new((i as u64) << 32, 64, 32 << 20, 0)))
            .collect();
        let mut sys = System::new(cfg, traces);
        let r = sys.run(60_000, 5_000);
        let dropped: u64 =
            r.l2.iter().map(|c| c.prefetch_dropped).sum::<u64>() + r.llc.prefetch_dropped;
        assert!(dropped > 0, "dense streams must trigger prefetch shedding");
    }

    #[test]
    fn dependent_chains_have_lower_mlp_than_streams() {
        // same miss volume, but pointer chasing serializes: fewer
        // overlapping accesses => higher C-AMAT per access at the LLC
        struct Chase {
            pos: u64,
        }
        impl TraceSource for Chase {
            fn next_record(&mut self) -> TraceRecord {
                self.pos = crate::types::mix64(self.pos) % (32 << 14); // lines
                TraceRecord::dep_load(0x500, self.pos * 64, 1)
            }
            fn name(&self) -> &str {
                "chase"
            }
        }
        let mut cfg = SimConfig::small_test(1);
        cfg.prefetchers = crate::config::PrefetcherConfig::none();
        let mut chase_sys = System::new(cfg.clone(), vec![boxed(Chase { pos: 1 })]);
        let chase = chase_sys.run(20_000, 2_000);
        let mut stream_sys = System::new(cfg, vec![boxed(RandomSource::new(0, 32 << 20, 1, 5))]);
        let stream = stream_sys.run(20_000, 2_000);
        assert!(
            chase.per_core[0].ipc() < stream.per_core[0].ipc(),
            "chase {} should be slower than independent random {}",
            chase.per_core[0].ipc(),
            stream.per_core[0].ipc()
        );
    }

    #[test]
    fn event_kernel_jumps_but_never_past_epoch_boundary() {
        // A pointer-chasing workload stalls its ROB on long DRAM round
        // trips, so the event kernel must take multi-cycle jumps — but a
        // jump may never overshoot the epoch boundary, or feedback
        // epochs would fire at different cycles than the reference.
        struct Chase {
            pos: u64,
        }
        impl TraceSource for Chase {
            fn next_record(&mut self) -> TraceRecord {
                self.pos = crate::types::mix64(self.pos) % (1 << 19);
                TraceRecord::dep_load(0x500, self.pos * 64, 0)
            }
            fn name(&self) -> &str {
                "chase"
            }
        }
        let mut cfg = SimConfig::small_test(1);
        cfg.prefetchers = crate::config::PrefetcherConfig::none();
        let mut sys = System::new(cfg, vec![boxed(Chase { pos: 1 })]);
        let mut jumped = false;
        for _ in 0..200_000 {
            let before = sys.cycle;
            let epoch_target = sys.next_epoch;
            sys.advance(Kernel::EventDriven);
            // the clamp invariant: a jump lands on or before the epoch
            // boundary that was pending when it was taken
            assert!(
                sys.cycle <= epoch_target,
                "advance jumped from {before} past the epoch boundary {epoch_target} to {}",
                sys.cycle
            );
            if sys.cycle > before + 1 {
                jumped = true;
            }
        }
        assert!(jumped, "memory-bound chase should trigger clock jumps");
        assert!(sys.total_epochs > 0, "epochs must still tick while jumping");
    }

    #[test]
    fn policy_report_is_accessible_after_run() {
        let cfg = SimConfig::small_test(1);
        let mut sys = System::new(cfg, vec![boxed(RandomSource::new(0, 1 << 20, 1, 3))]);
        let _ = sys.run(5_000, 500);
        // the built-in LRU reports no custom metrics, but the plumbing
        // must be reachable through the trait object
        assert!(sys.hierarchy().llc.policy.report().is_empty());
        assert_eq!(sys.policy_name(), "LRU");
    }
}
