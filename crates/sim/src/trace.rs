//! Trace sources: the interface through which workloads feed the cores.
//!
//! Rich, workload-shaped generators (SPEC-like, GAP graph kernels) live
//! in the `chrome-traces` crate; this module defines the interface plus
//! two simple deterministic sources used by tests and examples.

use crate::types::{mix64, TraceRecord};

/// An endless supply of trace records for one core.
///
/// Sources must be infinite: generators wrap around when their underlying
/// pattern is exhausted (matching the championship-simulator practice of
/// replaying traces until every core reaches its instruction quota).
///
/// Sources must be [`Send`]: the parallel stepping kernel decodes each
/// core's issue plan — including its trace reads — on pool worker
/// threads. Only one thread ever touches a given source at a time (the
/// pool claims each core exactly once per round), so `Sync` is not
/// required.
pub trait TraceSource: Send {
    /// Produce the next record.
    fn next_record(&mut self) -> TraceRecord;

    /// Workload name (e.g. `"mcf"`, `"bfs-ur"`).
    fn name(&self) -> &str;
}

// NOTE: deliberately NO `impl TraceSource for Box<dyn TraceSource>`.
// Such a blanket impl lets an already-boxed source be boxed again
// (`Box<Box<dyn TraceSource>>` coerced back to `Box<dyn TraceSource>`),
// and every `next_record` — the single hottest call in the simulator —
// then pays two dependent pointer loads plus two indirect calls.
// Without it, double-boxing is a compile error and the per-core trace
// read in `Core::fetch_record` is exactly one vtable hop.

/// A simple strided loop over a working set: `base, base+stride, ...`
/// wrapping at `span` bytes. Useful for tests and the quickstart example.
#[derive(Debug, Clone)]
pub struct StridedSource {
    base: u64,
    stride: u64,
    span: u64,
    pos: u64,
    nonmem: u16,
    name: String,
}

impl StridedSource {
    /// Create a strided source touching `span` bytes with the given
    /// byte `stride`, with `nonmem` non-memory instructions between
    /// accesses.
    ///
    /// # Panics
    ///
    /// Panics if `stride` or `span` is zero.
    pub fn new(base: u64, stride: u64, span: u64, nonmem: u16) -> Self {
        assert!(stride > 0 && span > 0, "stride and span must be positive");
        StridedSource {
            base,
            stride,
            span,
            pos: 0,
            nonmem,
            name: format!("strided-{stride}"),
        }
    }
}

impl TraceSource for StridedSource {
    fn next_record(&mut self) -> TraceRecord {
        let addr = self.base + self.pos;
        self.pos = (self.pos + self.stride) % self.span;
        TraceRecord::load(0x400_000 + self.stride, addr, self.nonmem)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Cyclic replay of a pre-captured record sequence. This is the
/// in-memory form of file-backed replay (the `chrome-tracefile` crate
/// streams `.ctf` files with bounded memory instead); it wraps around at
/// the end of the sequence, like every other source.
#[derive(Debug, Clone)]
pub struct ReplaySource {
    records: Vec<TraceRecord>,
    pos: usize,
    name: String,
}

impl ReplaySource {
    /// Replay `records` cyclically under the given workload `name`.
    ///
    /// # Panics
    ///
    /// Panics on an empty sequence (sources must be infinite).
    pub fn new(name: impl Into<String>, records: Vec<TraceRecord>) -> Self {
        assert!(!records.is_empty(), "replay needs at least one record");
        ReplaySource {
            records,
            pos: 0,
            name: name.into(),
        }
    }
}

impl TraceSource for ReplaySource {
    fn next_record(&mut self) -> TraceRecord {
        let rec = self.records[self.pos];
        self.pos = (self.pos + 1) % self.records.len();
        rec
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Uniform random accesses over a working set (a worst case for any
/// cache policy). Deterministic given the seed.
#[derive(Debug, Clone)]
pub struct RandomSource {
    base: u64,
    span_lines: u64,
    state: u64,
    nonmem: u16,
}

impl RandomSource {
    /// Random loads over `span` bytes starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `span` is smaller than one cache line.
    pub fn new(base: u64, span: u64, nonmem: u16, seed: u64) -> Self {
        let span_lines = span / 64;
        assert!(span_lines > 0, "span must cover at least one line");
        RandomSource {
            base,
            span_lines,
            state: seed | 1,
            nonmem,
        }
    }
}

impl TraceSource for RandomSource {
    fn next_record(&mut self) -> TraceRecord {
        self.state = mix64(self.state);
        let line = self.state % self.span_lines;
        TraceRecord::load(0x500_000, self.base + line * 64, self.nonmem)
    }

    fn name(&self) -> &str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_wraps() {
        let mut s = StridedSource::new(0, 64, 128, 0);
        assert_eq!(s.next_record().vaddr, 0);
        assert_eq!(s.next_record().vaddr, 64);
        assert_eq!(s.next_record().vaddr, 0);
    }

    #[test]
    fn strided_carries_nonmem() {
        let mut s = StridedSource::new(0, 64, 1024, 7);
        assert_eq!(s.next_record().nonmem_before, 7);
    }

    #[test]
    fn random_is_deterministic() {
        let mut a = RandomSource::new(0, 1 << 20, 0, 42);
        let mut b = RandomSource::new(0, 1 << 20, 0, 42);
        for _ in 0..100 {
            assert_eq!(a.next_record(), b.next_record());
        }
    }

    #[test]
    fn random_stays_in_span() {
        let mut s = RandomSource::new(4096, 64 * 10, 0, 7);
        for _ in 0..1000 {
            let r = s.next_record();
            assert!(r.vaddr >= 4096 && r.vaddr < 4096 + 640);
        }
    }

    #[test]
    fn replay_wraps_and_matches_its_input() {
        let recs = vec![
            TraceRecord::load(0x400, 0x1000, 1),
            TraceRecord::store(0x404, 0x2000, 0),
        ];
        let mut r = ReplaySource::new("replayed", recs.clone());
        assert_eq!(r.next_record(), recs[0]);
        assert_eq!(r.next_record(), recs[1]);
        assert_eq!(r.next_record(), recs[0], "wraps around");
        assert_eq!(r.name(), "replayed");
    }

    #[test]
    fn boxed_source_dispatches() {
        let mut b: Box<dyn TraceSource> = Box::new(StridedSource::new(0, 64, 128, 0));
        assert_eq!(b.next_record().vaddr, 0);
        assert_eq!(b.name(), "strided-64");
    }
}
