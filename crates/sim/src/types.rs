//! Fundamental address and trace types shared across the simulator.

/// Size of a cache line in bytes (fixed at 64, as in the paper's Table V).
pub const LINE_SIZE: u64 = 64;
/// log2 of [`LINE_SIZE`].
pub const LINE_SHIFT: u32 = 6;
/// Size of a virtual/physical page in bytes.
pub const PAGE_SIZE: u64 = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

/// A cache-line address: a full byte address shifted right by
/// [`LINE_SHIFT`]. Using a newtype keeps line-granular and byte-granular
/// addresses from being mixed up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Build a line address from a full byte address.
    #[inline]
    pub fn from_byte_addr(addr: u64) -> Self {
        LineAddr(addr >> LINE_SHIFT)
    }

    /// The first byte address covered by this line.
    #[inline]
    pub fn to_byte_addr(self) -> u64 {
        self.0 << LINE_SHIFT
    }

    /// The physical page number this line belongs to.
    #[inline]
    pub fn page_number(self) -> u64 {
        self.0 >> (PAGE_SHIFT - LINE_SHIFT)
    }

    /// The next sequential line.
    #[inline]
    pub fn next(self) -> Self {
        LineAddr(self.0 + 1)
    }

    /// Offset this line address by a signed number of lines, saturating at 0.
    #[inline]
    pub fn offset(self, delta: i64) -> Self {
        LineAddr(
            self.0
                .wrapping_add_signed(delta)
                .min(u64::MAX >> LINE_SHIFT),
        )
    }
}

impl std::fmt::Display for LineAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line:{:#x}", self.0)
    }
}

/// Kind of memory operation carried by a trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A demand load; retirement waits for its completion.
    Load,
    /// A store; write-allocated but retired immediately (store buffer).
    Store,
}

/// One record of a memory trace.
///
/// Non-memory instructions are run-length encoded in `nonmem_before`:
/// the core executes that many single-cycle instructions before issuing
/// the memory operation described by the rest of the record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Number of non-memory instructions preceding this memory access.
    pub nonmem_before: u16,
    /// Program counter of the memory instruction.
    pub pc: u64,
    /// Virtual byte address accessed.
    pub vaddr: u64,
    /// Load or store.
    pub kind: AccessKind,
    /// True if this access depends on the value produced by the previous
    /// load of the same core (pointer chasing); it cannot issue before
    /// that load completes.
    pub dep_prev: bool,
}

impl TraceRecord {
    /// Convenience constructor for an independent load.
    pub fn load(pc: u64, vaddr: u64, nonmem_before: u16) -> Self {
        TraceRecord {
            nonmem_before,
            pc,
            vaddr,
            kind: AccessKind::Load,
            dep_prev: false,
        }
    }

    /// Convenience constructor for a dependent (pointer-chasing) load.
    pub fn dep_load(pc: u64, vaddr: u64, nonmem_before: u16) -> Self {
        TraceRecord {
            nonmem_before,
            pc,
            vaddr,
            kind: AccessKind::Load,
            dep_prev: true,
        }
    }

    /// Convenience constructor for a store.
    pub fn store(pc: u64, vaddr: u64, nonmem_before: u16) -> Self {
        TraceRecord {
            nonmem_before,
            pc,
            vaddr,
            kind: AccessKind::Store,
            dep_prev: false,
        }
    }
}

/// A fast, deterministic 64-bit mixer (splitmix64 finalizer). Used
/// throughout for signature hashing and page translation.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_addr_roundtrip() {
        let a = LineAddr::from_byte_addr(0x1234_5678);
        assert_eq!(a.to_byte_addr(), 0x1234_5640); // aligned down
        assert_eq!(LineAddr::from_byte_addr(a.to_byte_addr()), a);
    }

    #[test]
    fn line_addr_page_number() {
        let a = LineAddr::from_byte_addr(3 * PAGE_SIZE + 128);
        assert_eq!(a.page_number(), 3);
    }

    #[test]
    fn line_addr_next_and_offset() {
        let a = LineAddr(100);
        assert_eq!(a.next(), LineAddr(101));
        assert_eq!(a.offset(-5), LineAddr(95));
        assert_eq!(a.offset(7), LineAddr(107));
    }

    #[test]
    fn mix64_differs_for_nearby_inputs() {
        assert_ne!(mix64(1), mix64(2));
        assert_ne!(mix64(0), 0);
    }

    #[test]
    fn trace_record_constructors() {
        let r = TraceRecord::load(0x400, 0x1000, 4);
        assert_eq!(r.kind, AccessKind::Load);
        assert!(!r.dep_prev);
        let d = TraceRecord::dep_load(0x400, 0x1000, 0);
        assert!(d.dep_prev);
        let s = TraceRecord::store(0x400, 0x1000, 1);
        assert_eq!(s.kind, AccessKind::Store);
    }
}
