//! End-to-end latency-attribution invariants: every request's per-stage
//! cycles telescope exactly to its end-to-end latency, and the epoch
//! decomposition reconciles with `CamatTracker`'s whole-run totals.
#![cfg(feature = "telemetry")]

use chrome_sim::config::SimConfig;
use chrome_sim::system::System;
use chrome_sim::trace::{RandomSource, StridedSource, TraceSource};
use chrome_telemetry::{TelemetryConfig, TelemetrySink};

fn profiled_system(cores: usize) -> System {
    let traces: Vec<Box<dyn TraceSource>> = (0..cores)
        .map(|i| -> Box<dyn TraceSource> {
            if i % 2 == 0 {
                // streaming: high MLP, lots of overlap
                Box::new(StridedSource::new((i as u64) << 32, 64, 1 << 22, 1))
            } else {
                // random over a large set: frequent DRAM trips
                Box::new(RandomSource::new(
                    (i as u64) << 32,
                    1 << 24,
                    2,
                    0xC0FE + i as u64,
                ))
            }
        })
        .collect();
    let mut sys = System::new(SimConfig::small_test(cores), traces);
    let cfg = TelemetryConfig {
        profile: true,
        ..TelemetryConfig::default()
    };
    sys.set_telemetry(TelemetrySink::recording(cfg));
    sys
}

/// The tentpole acceptance invariant: per-stage cycle sums equal the
/// end-to-end latency exactly for every completed request (the profiler
/// checks each span at record time and counts violations).
#[test]
fn every_request_stage_sum_equals_latency() {
    let mut sys = profiled_system(2);
    sys.run(40_000, 0);
    sys.telemetry()
        .with(|t| {
            assert!(t.attrib.total_requests() > 1_000, "profiler saw traffic");
            assert_eq!(t.attrib.mismatches(), 0, "stage sums must telescope");
            for span in t.attrib.spans() {
                assert_eq!(span.stage_total(), span.latency(), "sampled span exact");
                assert!(span.end >= span.start);
            }
        })
        .expect("recording sink");
}

/// Profiler ground truth matches `CamatTracker` request-for-request:
/// same LLC demand-access count, same summed (non-overlapped) latency.
#[test]
fn profiler_reconciles_with_camat_tracker() {
    let mut sys = profiled_system(2);
    let results = sys.run(40_000, 0);
    sys.telemetry()
        .with(|t| {
            for (i, c) in results.per_core.iter().enumerate() {
                let (cycles, count) = t.attrib.llc_demand(i);
                assert!(c.llc_accesses > 0, "core {i} reached the LLC");
                assert_eq!(count, c.llc_accesses, "core {i} access count");
                assert_eq!(cycles, c.llc_latency_cycles, "core {i} latency sum");
                assert!(
                    c.llc_latency_cycles >= c.llc_active_cycles,
                    "pure AMAT dominates C-AMAT"
                );
            }
        })
        .expect("recording sink");
}

/// The same reconciliation holds across a warmup boundary: both the
/// profiler and the tracker are reset at measurement start.
#[test]
fn reconciliation_survives_warmup_reset() {
    let mut sys = profiled_system(2);
    let results = sys.run(30_000, 5_000);
    sys.telemetry()
        .with(|t| {
            assert_eq!(t.attrib.mismatches(), 0);
            for (i, c) in results.per_core.iter().enumerate() {
                let (cycles, count) = t.attrib.llc_demand(i);
                assert_eq!(count, c.llc_accesses, "core {i} access count");
                assert_eq!(cycles, c.llc_latency_cycles, "core {i} latency sum");
            }
        })
        .expect("recording sink");
}

/// Per-epoch C-AMAT decomposition sums back to the whole-run totals:
/// the boundary-splitting in `CamatTracker` conserves active cycles and
/// the epoch series carries the same accesses the final stats report.
#[test]
fn epoch_decomposition_sums_to_run_totals() {
    let mut sys = profiled_system(2);
    let results = sys.run(40_000, 0);
    sys.telemetry()
        .with(|t| {
            assert!(t.epochs.len() >= 2, "run spans multiple epochs");
            for (i, c) in results.per_core.iter().enumerate() {
                let active: u64 = t.epochs.records().iter().map(|r| r.llc_active[i]).sum();
                let accesses: u64 = t.epochs.records().iter().map(|r| r.llc_accesses[i]).sum();
                assert_eq!(active, c.llc_active_cycles, "core {i} active cycles");
                assert_eq!(accesses, c.llc_accesses, "core {i} accesses");
            }
        })
        .expect("recording sink");
}

/// MSHR occupancy is sampled at every level into the epoch series.
#[test]
fn epoch_series_samples_private_mshr_occupancy() {
    let mut sys = profiled_system(2);
    sys.run(40_000, 0);
    sys.telemetry()
        .with(|t| {
            for r in t.epochs.records() {
                assert_eq!(r.l1_mshr_occupancy.len(), 2);
                assert_eq!(r.l2_mshr_occupancy.len(), 2);
            }
            // with random DRAM-bound traffic at least one sample should
            // catch a non-empty private MSHR file
            let any_busy = t.epochs.records().iter().any(|r| {
                r.l1_mshr_occupancy.iter().any(|&o| o > 0)
                    || r.l2_mshr_occupancy.iter().any(|&o| o > 0)
            });
            assert!(any_busy, "occupancy probes never fired");
        })
        .expect("recording sink");
}

/// A no-profile recording sink keeps the epoch series but records no
/// spans — the profiler is opt-in even when telemetry is on.
#[test]
fn profiling_is_opt_in() {
    let traces: Vec<Box<dyn TraceSource>> = vec![
        Box::new(StridedSource::new(0, 64, 1 << 20, 1)),
        Box::new(StridedSource::new(1 << 32, 64, 1 << 20, 1)),
    ];
    let mut sys = System::new(SimConfig::small_test(2), traces);
    sys.set_telemetry(TelemetrySink::recording(TelemetryConfig::default()));
    sys.run(20_000, 0);
    sys.telemetry()
        .with(|t| {
            assert!(!t.epochs.is_empty(), "epoch series still recorded");
            assert_eq!(t.attrib.total_requests(), 0, "no spans without profile");
        })
        .expect("recording sink");
}
