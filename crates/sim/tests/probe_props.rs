//! Randomized equivalence tests pinning the vectorized set-probe kernel
//! to its scalar reference, and the data-oriented cache hot paths to
//! naive models. Driven by the seeded in-repo RNG, so every run is
//! deterministic and reproducible from the printed case index.
//!
//! These are the safety net under the `probe::find_key` dispatch: the
//! AVX2 kernel, the scalar kernel and the fused fill scan must agree on
//! *first-match* semantics for every layout — including layouts with
//! several invalid (zero) ways, where which zero wins decides the
//! replacement victim and therefore the entire downstream simulation.

use chrome_sim::cache::PrivateCache;
use chrome_sim::config::CacheConfig;
use chrome_sim::llc::{LlcOutcome, SharedLlc};
use chrome_sim::policy::{AccessInfo, BuiltinLru, SystemFeedback};
use chrome_sim::probe::{find_key, find_key_scalar, kernel_name};
use chrome_sim::rng::SmallRng;
use chrome_sim::types::LineAddr;

const CASES: usize = 256;

fn packed(line: u64) -> u64 {
    (line << 1) | 1
}

/// The dispatched kernel agrees with the scalar reference on random
/// layouts: random lengths (spanning the scalar/vector dispatch
/// threshold, vector-block boundaries and tails), duplicate keys, and
/// random zero (invalid-way) masking.
#[test]
fn dispatched_kernel_matches_scalar_on_random_layouts() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_0001);
    println!("probe kernel under test: {}", kernel_name());
    for case in 0..CASES {
        let len = rng.gen_range(0..33usize);
        // A small line universe forces duplicates; zeroing ~1/3 of the
        // ways exercises the invalid-way search with multiple zeros.
        let mut keys: Vec<u64> = (0..len).map(|_| packed(rng.gen_range(0u64..12))).collect();
        for k in keys.iter_mut() {
            if rng.gen_range(0..3u32) == 0 {
                *k = 0;
            }
        }
        // Probe for every present key, an absent key, and zero.
        let mut probes: Vec<u64> = keys.clone();
        probes.push(packed(999));
        probes.push(0);
        for key in probes {
            assert_eq!(
                find_key(&keys, key),
                find_key_scalar(&keys, key),
                "case {case}: len {len} key {key:#x} layout {keys:?}"
            );
        }
    }
}

/// A naive always-scalar model of a set-associative LRU cache: lines
/// with a timestamp, searched front to back.
struct NaiveCache {
    sets: usize,
    ways: usize,
    /// `(line, lru_stamp)` per way; `None` = invalid.
    blocks: Vec<Option<(u64, u64)>>,
    tick: u64,
}

impl NaiveCache {
    fn new(sets: usize, ways: usize) -> Self {
        NaiveCache {
            sets,
            ways,
            blocks: vec![None; sets * ways],
            tick: 0,
        }
    }

    fn set_of(&self, line: u64) -> usize {
        (line as usize) % self.sets
    }

    fn lookup(&mut self, line: u64) -> bool {
        let base = self.set_of(line) * self.ways;
        for w in 0..self.ways {
            if let Some((l, _)) = self.blocks[base + w] {
                if l == line {
                    self.tick += 1;
                    self.blocks[base + w] = Some((l, self.tick));
                    return true;
                }
            }
        }
        false
    }

    /// First invalid way, else first LRU-minimal way; returns the
    /// evicted line if a valid block was replaced.
    fn fill(&mut self, line: u64) -> Option<u64> {
        let base = self.set_of(line) * self.ways;
        let mut way = 0;
        let mut best = u64::MAX;
        let mut evicted = None;
        for w in 0..self.ways {
            match self.blocks[base + w] {
                None => {
                    way = w;
                    evicted = None;
                    break;
                }
                Some((_, stamp)) if stamp < best => {
                    best = stamp;
                    way = w;
                }
                Some(_) => {}
            }
        }
        if let Some((l, _)) = self.blocks[base + way] {
            evicted = Some(l);
        }
        self.tick += 1;
        self.blocks[base + way] = Some((line, self.tick));
        evicted
    }
}

/// The SoA cache (SIMD probes, fused invalid/LRU fill scan) is
/// trace-equivalent to the naive model: identical hit/miss outcomes and
/// identical victims, access for access, across random geometries.
#[test]
fn private_cache_matches_naive_model() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_0002);
    for case in 0..CASES {
        let (sets, ways) = match rng.gen_range(0..4u32) {
            0 => (2, 4),
            1 => (4, 8),
            2 => (8, 2),
            _ => (2, 16),
        };
        let cfg = CacheConfig {
            capacity: sets * ways * 64,
            ways,
            latency: 1,
            mshr_entries: 4,
        };
        let mut cache = PrivateCache::new(&cfg);
        let mut model = NaiveCache::new(sets, ways);
        let accesses = rng.gen_range(16..400usize);
        for a in 0..accesses {
            let line = rng.gen_range(0u64..(sets as u64 * ways as u64 * 3));
            let hit = cache.lookup(LineAddr(line), false, false).is_some();
            let model_hit = model.lookup(line);
            assert_eq!(hit, model_hit, "case {case}: access {a} line {line}");
            if !hit {
                let ev = cache.fill(LineAddr(line), false, false, a as u64);
                let model_ev = model.fill(line);
                assert_eq!(
                    ev.map(|e| e.line.0),
                    model_ev,
                    "case {case}: access {a} victim diverged"
                );
            }
        }
    }
}

/// The LLC's `last_fill` fast path: `set_ready` right after a fill must
/// update the same block a later probe finds, whether the short-circuit
/// hits (ready recorded immediately after the fill) or misses (other
/// fills in between force the full set scan). The hit latency a demand
/// access observes is the proof either way.
#[test]
fn llc_last_fill_fast_path_is_transparent() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_0003);
    let feedback = SystemFeedback::new(1);
    for case in 0..CASES / 4 {
        let cfg = CacheConfig {
            capacity: 4 * 8 * 64,
            ways: 8,
            latency: 10,
            mshr_entries: 16,
        };
        let mut llc = SharedLlc::new(&cfg, 1, BuiltinLru::new());
        let mut pending: Vec<(u64, u64)> = Vec::new();
        let mut cycle = 0u64;
        for a in 0..200u64 {
            cycle += rng.gen_range(1..50u64);
            let line = rng.gen_range(0u64..64);
            let info = AccessInfo {
                core: 0,
                line: LineAddr(line),
                pc: line,
                is_write: false,
                is_prefetch: false,
                cycle,
            };
            match llc.access(&info, &feedback) {
                LlcOutcome::Hit { ready } => {
                    if let Some(pos) = pending.iter().position(|&(l, _)| l == line) {
                        let (_, expect) = pending.remove(pos);
                        assert_eq!(
                            ready, expect,
                            "case {case}: access {a} line {line} ready diverged"
                        );
                    }
                }
                LlcOutcome::Miss { bypassed, .. } => {
                    assert!(!bypassed, "LRU never bypasses");
                    let ready = cycle + rng.gen_range(1..200u64);
                    // Sometimes record readiness immediately (last_fill
                    // short-circuit), sometimes after other misses have
                    // moved last_fill (full scan path).
                    llc.set_ready(LineAddr(line), ready);
                    pending.retain(|&(l, _)| l != line);
                    if llc.probe(LineAddr(line)).is_some() {
                        pending.push((line, ready));
                    }
                }
            }
            // Evictions invalidate pending ready expectations.
            pending.retain(|&(l, _)| llc.probe(LineAddr(l)).is_some());
        }
    }
}
