//! Randomized invariant tests for the simulator's core data structures.
//! Each test drives a seeded in-repo RNG over many generated cases, so
//! runs are deterministic and reproducible from the printed case index.

use chrome_sim::cache::PrivateCache;
use chrome_sim::config::{CacheConfig, DramConfig};
use chrome_sim::dram::Dram;
use chrome_sim::mshr::{MshrFile, MshrOutcome};
use chrome_sim::rng::SmallRng;
use chrome_sim::types::{LineAddr, TraceRecord};

const CASES: usize = 96;

/// A cache never reports more resident blocks than its geometry, and
/// any line just filled is immediately findable.
#[test]
fn cache_geometry_respected() {
    let mut rng = SmallRng::seed_from_u64(0x51A_0001);
    for case in 0..CASES {
        let cfg = CacheConfig {
            capacity: 8 * 4 * 64,
            ways: 4,
            latency: 1,
            mshr_entries: 4,
        };
        let mut cache = PrivateCache::new(&cfg);
        let accesses = rng.gen_range(1..300usize);
        for i in 0..accesses {
            let line = LineAddr(rng.gen_range(0u64..10_000));
            if cache.lookup(line, false, false).is_none() {
                cache.fill(line, i % 3 == 0, false, i as u64);
            }
            assert!(
                cache.probe(line).is_some(),
                "case {case}: just-filled line missing"
            );
            assert!(cache.occupancy() <= 8 * 4, "case {case}: over geometry");
        }
    }
}

/// LRU keeps the most recently touched line when a conflict evicts.
#[test]
fn lru_never_evicts_most_recent() {
    let mut rng = SmallRng::seed_from_u64(0x51A_0002);
    for case in 0..CASES {
        let cfg = CacheConfig {
            capacity: 2 * 64,
            ways: 2,
            latency: 1,
            mshr_entries: 4,
        };
        let mut cache = PrivateCache::new(&cfg);
        let mut last = None;
        let fills = rng.gen_range(2..64usize);
        for _ in 0..fills {
            let line = LineAddr(rng.gen_range(0u64..64)); // sets = 1: all conflict
            if cache.lookup(line, false, false).is_none() {
                cache.fill(line, false, false, 0);
            }
            if let Some(prev) = last {
                if prev != line {
                    assert!(
                        cache.probe(prev).is_some(),
                        "case {case}: most recent line was evicted"
                    );
                }
            }
            last = Some(line);
        }
    }
}

/// The MSHR never exceeds capacity and merges are exact.
#[test]
fn mshr_capacity_invariant() {
    let mut rng = SmallRng::seed_from_u64(0x51A_0003);
    for case in 0..CASES {
        let mut mshr = MshrFile::new(4);
        let mut t = 0u64;
        let ops = rng.gen_range(1..200usize);
        for _ in 0..ops {
            let line = rng.gen_range(0u64..32);
            t += rng.gen_range(0u64..1000);
            match mshr.lookup(LineAddr(line), t) {
                MshrOutcome::Available => {
                    mshr.register(LineAddr(line), t + 100);
                }
                MshrOutcome::Merged { ready } => assert!(ready > t, "case {case}"),
                MshrOutcome::Full { free_at } => assert!(free_at > t, "case {case}"),
            }
            assert!(
                mshr.occupancy() <= mshr.capacity(),
                "case {case}: over capacity"
            );
        }
    }
}

/// DRAM completions are causal (after arrival + minimum latency) and
/// repeat-deterministic.
#[test]
fn dram_is_causal() {
    let mut rng = SmallRng::seed_from_u64(0x51A_0004);
    for case in 0..CASES {
        let mut a = Dram::new(DramConfig::default());
        let mut b = Dram::new(DramConfig::default());
        let mut t = 0u64;
        let reqs = rng.gen_range(1..200usize);
        for _ in 0..reqs {
            let line = rng.gen_range(0u64..100_000);
            t += rng.gen_range(0u64..200);
            let da = a.access(LineAddr(line), t, false);
            let db = b.access(LineAddr(line), t, false);
            assert_eq!(da, db, "case {case}: nondeterministic completion");
            assert!(
                da >= t + 60,
                "case {case}: completion {da} too early for arrival {t}"
            );
        }
    }
}

/// Trace-record constructors round-trip their fields.
#[test]
fn trace_record_fields() {
    let mut rng = SmallRng::seed_from_u64(0x51A_0005);
    for _ in 0..CASES {
        let pc = rng.next_u64();
        let addr = rng.next_u64();
        let n = rng.next_u64() as u16;
        let r = TraceRecord::load(pc, addr, n);
        assert_eq!(
            (r.pc, r.vaddr, r.nonmem_before, r.dep_prev),
            (pc, addr, n, false)
        );
        let d = TraceRecord::dep_load(pc, addr, n);
        assert!(d.dep_prev);
    }
}
