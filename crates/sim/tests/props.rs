//! Property-based tests for the simulator's core data structures.

use chrome_sim::cache::PrivateCache;
use chrome_sim::config::{CacheConfig, DramConfig};
use chrome_sim::dram::Dram;
use chrome_sim::mshr::{MshrFile, MshrOutcome};
use chrome_sim::types::{LineAddr, TraceRecord};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A cache never reports more resident blocks than its geometry,
    /// and any line just filled is immediately findable.
    #[test]
    fn cache_geometry_respected(lines in prop::collection::vec(0u64..10_000, 1..300)) {
        let cfg = CacheConfig { capacity: 8 * 4 * 64, ways: 4, latency: 1, mshr_entries: 4 };
        let mut cache = PrivateCache::new(&cfg);
        for (i, &l) in lines.iter().enumerate() {
            let line = LineAddr(l);
            if cache.lookup(line, false, false).is_none() {
                cache.fill(line, i % 3 == 0, false, i as u64);
            }
            prop_assert!(cache.probe(line).is_some(), "just-filled line missing");
            prop_assert!(cache.occupancy() <= 8 * 4);
        }
    }

    /// LRU keeps the most recently touched line when a conflict evicts.
    #[test]
    fn lru_never_evicts_most_recent(fillers in prop::collection::vec(0u64..64, 2..64)) {
        let cfg = CacheConfig { capacity: 2 * 64, ways: 2, latency: 1, mshr_entries: 4 };
        let mut cache = PrivateCache::new(&cfg);
        let mut last = None;
        for &f in &fillers {
            let line = LineAddr(f * 1); // sets = 1: all conflict
            if cache.lookup(line, false, false).is_none() {
                cache.fill(line, false, false, 0);
            }
            if let Some(prev) = last {
                if prev != line {
                    // the immediately preceding access must survive one fill
                    prop_assert!(
                        cache.probe(prev).is_some() || prev == line,
                        "most recent line was evicted"
                    );
                }
            }
            last = Some(line);
        }
    }

    /// The MSHR never exceeds capacity and merges are exact.
    #[test]
    fn mshr_capacity_invariant(ops in prop::collection::vec((0u64..32, 0u64..1000), 1..200)) {
        let mut mshr = MshrFile::new(4);
        let mut t = 0u64;
        for (line, dt) in ops {
            t += dt;
            match mshr.lookup(LineAddr(line), t) {
                MshrOutcome::Available => {
                    mshr.register(LineAddr(line), t + 100);
                }
                MshrOutcome::Merged { ready } => prop_assert!(ready > t),
                MshrOutcome::Full { free_at } => prop_assert!(free_at > t),
            }
            prop_assert!(mshr.occupancy() <= mshr.capacity());
        }
    }

    /// DRAM completions are causal (after arrival + minimum latency) and
    /// repeat-deterministic.
    #[test]
    fn dram_is_causal(reqs in prop::collection::vec((0u64..100_000, 0u64..200), 1..200)) {
        let mut a = Dram::new(DramConfig::default());
        let mut b = Dram::new(DramConfig::default());
        let mut t = 0u64;
        for (line, dt) in reqs {
            t += dt;
            let da = a.access(LineAddr(line), t, false);
            let db = b.access(LineAddr(line), t, false);
            prop_assert_eq!(da, db);
            prop_assert!(da >= t + 60, "completion {} too early for arrival {}", da, t);
        }
    }

    /// Trace-record constructors round-trip their fields.
    #[test]
    fn trace_record_fields(pc in any::<u64>(), addr in any::<u64>(), n in any::<u16>()) {
        let r = TraceRecord::load(pc, addr, n);
        prop_assert_eq!((r.pc, r.vaddr, r.nonmem_before, r.dep_prev), (pc, addr, n, false));
        let d = TraceRecord::dep_load(pc, addr, n);
        prop_assert!(d.dep_prev);
    }
}
