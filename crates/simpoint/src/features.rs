//! Per-interval feature vectors from `.ctf` footer interval stats plus
//! streamed memory region vectors.
//!
//! Each aligned interval index (interval `j` across every core) becomes
//! one point in a [`DIMS`]-dimensional space. The first
//! [`SCALAR_DIMS`] dimensions come straight from the footer stats and
//! capture the memory behaviour the cache hierarchy reacts to: access
//! intensity, store and dependence mix, footprint, line reuse, address
//! span — and the interval's temporal position. Position matters
//! because full-run miss counts are dominated by the cold-cache
//! transient: early and late intervals with identical memory mix see
//! very different hierarchy state, and without a time dimension k-means
//! lumps them together and picks warm-bulk representatives that
//! undercount misses.
//!
//! The remaining [`REGION_DIMS`] dimensions are a *memory region
//! vector* — the memory analogue of SimPoint's basic-block vector.
//! Scalar summaries cannot tell two intervals apart when they touch
//! the same *number* of lines in different *places*, which is exactly
//! what distinguishes the phases of the phase-heavy SPEC workloads;
//! clustering on scalars alone leaves high miss-rate variance inside
//! each cluster and the sampled estimate inherits it as selection
//! noise. The region vector hashes each access's 4 KiB region into a
//! fixed-width histogram (feature hashing plays the role of SimPoint's
//! random projection), so intervals land near each other only when
//! they concentrate their traffic in the same parts of the address
//! space. Dimensions are min-max normalized over the workload so
//! k-means distances weigh each behaviour equally regardless of raw
//! units.
//!
//! The final [`FUNC_DIMS`] dimensions cluster directly on the
//! *covariate*: per-interval pseudo-CPI and LLC demand MPKI from a
//! functional-warmup pass over the whole trace (cheap — it costs no
//! detailed instructions). Footer scalars and region vectors are
//! proxies for cache behaviour; the functional profile measures it.
//! Grouping intervals by functional miss rate collapses the
//! within-cluster miss variance that dominates sampled-MPKI error on
//! phase-heavy workloads, and it makes the regression estimator's
//! covariate nearly constant inside each cluster, so the residual
//! correction stays small and stable.

use chrome_sim::types::{TraceRecord, LINE_SHIFT};
use chrome_tracefile::IntervalStats;

/// Scalar feature dimensions straight from the footer interval stats.
pub const SCALAR_DIMS: usize = 7;

/// Hashed region-histogram dimensions per interval.
pub const REGION_DIMS: usize = 16;

/// Functional-profile covariate dimensions per interval: pseudo-CPI
/// and LLC demand MPKI from a functional pass over the whole trace.
pub const FUNC_DIMS: usize = 2;

/// Total feature dimensions per interval.
pub const DIMS: usize = SCALAR_DIMS + REGION_DIMS + FUNC_DIMS;

/// Cache lines per region: `1 << REGION_LINE_SHIFT` lines = 4 KiB.
const REGION_LINE_SHIFT: u64 = 6;

/// Column names, index-aligned with the vectors ([`DIMS`] entries).
pub const DIM_NAMES: [&str; DIMS] = [
    "mem_intensity",
    "store_ratio",
    "dep_ratio",
    "footprint",
    "reuse",
    "span",
    "position",
    "region00",
    "region01",
    "region02",
    "region03",
    "region04",
    "region05",
    "region06",
    "region07",
    "region08",
    "region09",
    "region10",
    "region11",
    "region12",
    "region13",
    "region14",
    "region15",
    "func_cpi",
    "func_mpki",
];

/// Feature matrix for one workload: one row per aligned interval.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureSet {
    /// Raw (unnormalized) feature rows, for inspection/export.
    pub raw: Vec<[f64; DIMS]>,
    /// Min-max normalized rows — what clustering runs on. Constant
    /// dimensions normalize to 0.
    pub norm: Vec<[f64; DIMS]>,
    /// Total instructions (summed over cores) per interval — the
    /// cluster-weight basis.
    pub instructions: Vec<u64>,
}

impl FeatureSet {
    /// Number of aligned intervals (rows).
    #[must_use]
    pub fn len(&self) -> usize {
        self.norm.len()
    }

    /// True when no aligned interval exists.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.norm.is_empty()
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn raw_features(
    agg: &[&IntervalStats],
    position: f64,
    region: &[u64; REGION_DIMS],
    func: [f64; FUNC_DIMS],
) -> [f64; DIMS] {
    let instructions: u64 = agg.iter().map(|s| s.instructions).sum();
    let records: u64 = agg.iter().map(|s| s.records).sum();
    let stores: u64 = agg.iter().map(|s| s.stores).sum();
    let dep_loads: u64 = agg.iter().map(|s| s.dep_loads).sum();
    let distinct: u64 = agg.iter().map(|s| s.distinct_lines).sum();
    let min_line = agg.iter().map(|s| s.min_line).min().unwrap_or(u64::MAX);
    let max_line = agg.iter().map(|s| s.max_line).max().unwrap_or(0);
    let span = if min_line == u64::MAX || max_line <= min_line {
        0.0
    } else {
        ((max_line - min_line) as f64).ln_1p()
    };
    let mut out = [0.0; DIMS];
    out[..SCALAR_DIMS].copy_from_slice(&[
        ratio(records, instructions),
        ratio(stores, records),
        ratio(dep_loads, records),
        (distinct as f64).ln_1p(),
        ratio(records, distinct.max(1)),
        span,
        position,
    ]);
    let region_total: u64 = region.iter().sum();
    for (o, &c) in out[SCALAR_DIMS..].iter_mut().zip(region) {
        *o = ratio(c, region_total);
    }
    out[SCALAR_DIMS + REGION_DIMS..].copy_from_slice(&func);
    out
}

/// Hashed region histograms for one core: one [`REGION_DIMS`]-bucket
/// count vector per footer interval. The footer's per-interval record
/// counts partition the decoded stream exactly (the recorder assigns a
/// record wholly to the interval it closes), so interval `j` is simply
/// the next `intervals[j].records` records. Each access's 4 KiB region
/// hashes (SplitMix64 — the workload-seed finalizer, deterministic
/// everywhere) into one bucket.
#[must_use]
pub fn region_histograms(
    records: &[TraceRecord],
    intervals: &[IntervalStats],
) -> Vec<[u64; REGION_DIMS]> {
    let mut out = Vec::with_capacity(intervals.len());
    let mut next = 0usize;
    for iv in intervals {
        let mut hist = [0u64; REGION_DIMS];
        let end = (next + iv.records as usize).min(records.len());
        for rec in &records[next..end] {
            let region = (rec.vaddr >> LINE_SHIFT) >> REGION_LINE_SHIFT;
            let bucket = (chrome_exec::splitmix64(region) % REGION_DIMS as u64) as usize;
            hist[bucket] += 1;
        }
        next = end;
        out.push(hist);
    }
    out
}

/// Build the feature matrix from each core's interval list, with the
/// region dimensions left at zero (they normalize to constant columns
/// and contribute nothing to distances). Prefer
/// [`extract_features_with_regions`] when the record streams are
/// available — scalar-only clustering cannot separate phases that
/// touch different parts of the address space.
///
/// # Panics
///
/// Panics if `per_core` is empty (a trace always has at least one core).
#[must_use]
pub fn extract_features(per_core: &[Vec<IntervalStats>]) -> FeatureSet {
    extract_features_with_regions(per_core, None, None)
}

/// Build the feature matrix from each core's interval list plus
/// (optionally) each core's region histograms from
/// [`region_histograms`] and (optionally) per-interval functional
/// covariates — `[pseudo-CPI, LLC demand MPKI]` from a functional
/// profile pass ([`chrome_sim::System::run_functional_profile`]).
/// Only the first `min(len)` intervals participate — cores drift
/// apart by at most one trailing partial interval, and an unmatched
/// tail has no aligned system state to sample.
///
/// # Panics
///
/// Panics if `per_core` is empty (a trace always has at least one
/// core), or if `regions`/`func` is present with fewer entries than
/// aligned intervals.
#[must_use]
pub fn extract_features_with_regions(
    per_core: &[Vec<IntervalStats>],
    regions: Option<&[Vec<[u64; REGION_DIMS]>]>,
    func: Option<&[[f64; FUNC_DIMS]]>,
) -> FeatureSet {
    assert!(!per_core.is_empty(), "no cores in interval data");
    let n = per_core.iter().map(Vec::len).min().unwrap_or(0);
    let mut raw = Vec::with_capacity(n);
    let mut instructions = Vec::with_capacity(n);
    for j in 0..n {
        let agg: Vec<&IntervalStats> = per_core.iter().map(|c| &c[j]).collect();
        let mut region = [0u64; REGION_DIMS];
        if let Some(regions) = regions {
            for core in regions {
                for (b, &c) in region.iter_mut().zip(&core[j]) {
                    *b += c;
                }
            }
        }
        let fc = func.map_or([0.0; FUNC_DIMS], |f| f[j]);
        raw.push(raw_features(&agg, j as f64, &region, fc));
        instructions.push(agg.iter().map(|s| s.instructions).sum());
    }
    FeatureSet {
        norm: normalize(&raw),
        raw,
        instructions,
    }
}

/// Normalize for clustering. Scalar columns min-max into [0, 1]
/// (constant columns map to 0 so they contribute nothing to
/// distances). Region columns pass through as raw fractions: they are
/// already commensurate (each interval's region block sums to 1), and
/// min-max stretching would blow narrow-band fraction noise up to
/// full-range signal — on streaming workloads whose bucket shares
/// wobble in a tight band, that noise swamps the scalar dimensions
/// and clustering degrades badly. Functional-covariate columns get a
/// mean-relative squash `x / (x + mean)` instead of min-max for the
/// same reason: a workload whose functional miss rate is flat would
/// otherwise have its measurement noise stretched to full range,
/// while the squash leaves a flat column constant (≈ 0.5) and spreads
/// a genuinely phase-y one across [0, 1).
fn normalize(raw: &[[f64; DIMS]]) -> Vec<[f64; DIMS]> {
    let mut lo = [f64::INFINITY; SCALAR_DIMS];
    let mut hi = [f64::NEG_INFINITY; SCALAR_DIMS];
    for row in raw {
        for d in 0..SCALAR_DIMS {
            lo[d] = lo[d].min(row[d]);
            hi[d] = hi[d].max(row[d]);
        }
    }
    let func0 = SCALAR_DIMS + REGION_DIMS;
    let mut mean = [0.0; FUNC_DIMS];
    for row in raw {
        for (m, &v) in mean.iter_mut().zip(&row[func0..]) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= raw.len().max(1) as f64;
    }
    raw.iter()
        .map(|row| {
            let mut out = *row;
            for d in 0..SCALAR_DIMS {
                let range = hi[d] - lo[d];
                out[d] = if range > 0.0 {
                    (row[d] - lo[d]) / range
                } else {
                    0.0
                };
            }
            for (d, m) in (func0..DIMS).zip(mean) {
                out[d] = if m > 0.0 { row[d] / (row[d] + m) } else { 0.0 };
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(instructions: u64, records: u64, stores: u64, distinct: u64) -> IntervalStats {
        IntervalStats {
            instructions,
            records,
            loads: records - stores,
            stores,
            dep_loads: records / 4,
            distinct_lines: distinct,
            min_line: 0x100,
            max_line: 0x100 + distinct,
        }
    }

    #[test]
    fn aligned_length_is_min_over_cores() {
        let fs = extract_features(&[
            vec![
                iv(1000, 100, 10, 50),
                iv(1000, 200, 20, 60),
                iv(300, 5, 1, 4),
            ],
            vec![iv(1000, 150, 30, 40), iv(900, 100, 10, 30)],
        ]);
        assert_eq!(fs.len(), 2);
        assert_eq!(fs.instructions, vec![2000, 1900]);
    }

    #[test]
    fn normalization_bounds_and_constant_columns() {
        let fs = extract_features(&[vec![
            iv(1000, 100, 10, 50),
            iv(1000, 500, 250, 400),
            iv(1000, 300, 30, 200),
        ]]);
        for row in &fs.norm {
            for &v in row {
                assert!(
                    (0.0..=1.0).contains(&v),
                    "normalized value {v} out of range"
                );
            }
        }
        // identical intervals ⇒ every behaviour column constant ⇒ zero;
        // only the position column still spreads across [0, 1]
        let flat = extract_features(&[vec![iv(1000, 100, 10, 50); 4]]);
        let pos = SCALAR_DIMS - 1;
        assert!(flat.norm.iter().all(|r| r[..pos].iter().all(|&v| v == 0.0)));
        assert!(flat
            .norm
            .iter()
            .all(|r| r[SCALAR_DIMS..].iter().all(|&v| v == 0.0)));
        let positions: Vec<f64> = flat.norm.iter().map(|r| r[pos]).collect();
        assert_eq!(positions, vec![0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0]);
        assert_eq!(flat.raw[0][..pos], flat.raw[3][..pos]);
    }

    #[test]
    fn region_histograms_partition_by_footer_record_counts() {
        use chrome_sim::types::AccessKind;
        // two intervals of 3 and 2 records; addresses pin the buckets
        let rec = |vaddr: u64| TraceRecord {
            nonmem_before: 0,
            pc: 0x400,
            vaddr,
            kind: AccessKind::Load,
            dep_prev: false,
        };
        let records = vec![
            rec(0x0000),
            rec(0x1000),
            rec(0x0040),
            rec(0x2000),
            rec(0x2040),
        ];
        let intervals = vec![
            IntervalStats {
                records: 3,
                ..iv(3, 3, 0, 2)
            },
            IntervalStats {
                records: 2,
                ..iv(2, 2, 0, 1)
            },
        ];
        let hists = region_histograms(&records, &intervals);
        assert_eq!(hists.len(), 2);
        assert_eq!(hists[0].iter().sum::<u64>(), 3);
        assert_eq!(hists[1].iter().sum::<u64>(), 2);
        // same 4 KiB region ⇒ same bucket: records 3 and 4 share 0x2000
        let b = (chrome_exec::splitmix64(0x2000 >> LINE_SHIFT >> 6) % REGION_DIMS as u64) as usize;
        assert_eq!(hists[1][b], 2);
        // the whole feature pipeline spreads intervals that differ only
        // in where (not how much) they touch memory
        let fs =
            extract_features_with_regions(std::slice::from_ref(&intervals), Some(&[hists]), None);
        assert!(
            fs.norm[0][SCALAR_DIMS..SCALAR_DIMS + REGION_DIMS]
                != fs.norm[1][SCALAR_DIMS..SCALAR_DIMS + REGION_DIMS]
        );
    }

    #[test]
    fn empty_interval_features_are_finite() {
        // a (degenerate) interval with no records must not produce NaN
        let fs = extract_features(&[vec![
            IntervalStats {
                instructions: 10,
                records: 0,
                loads: 0,
                stores: 0,
                dep_loads: 0,
                distinct_lines: 0,
                min_line: u64::MAX,
                max_line: 0,
            },
            iv(1000, 100, 10, 50),
        ]]);
        assert!(fs.raw.iter().flatten().all(|v| v.is_finite()));
        assert!(fs.norm.iter().flatten().all(|v| v.is_finite()));
    }
}
