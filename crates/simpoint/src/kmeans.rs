//! Deterministic k-means++ over interval feature vectors.
//!
//! Reproducibility is load-bearing: the sampling plan feeds the
//! `CellSpec` checkpoint identity, so the same trace + spec + seed must
//! pick the same representatives on every machine, at every job count.
//! All randomness comes from a SplitMix64 stream seeded by the caller
//! (the grid passes `workload_seed`), iteration order is fixed, and
//! every tie breaks to the lowest index.

use crate::features::DIMS;

/// SplitMix64 stream over `chrome_exec`'s finalizer — the same mixing
/// the grid uses for trace seeds, so plans and traces share one
/// deterministic seed lineage.
struct Rng {
    state: u64,
}

impl Rng {
    fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        // splitmix64 itself adds the golden-ratio increment before
        // mixing; advancing state by it again keeps successive outputs
        // decorrelated without repeating the first draw.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        chrome_exec::splitmix64(self.state)
    }

    /// Uniform in [0, 1) with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Output of [`cluster`]: a cluster id per point plus one
/// representative point per cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// Cluster id for each input point.
    pub assignment: Vec<usize>,
    /// For each cluster, the index of the member closest to the final
    /// centroid (lowest index on ties). Sorted ascending.
    pub representatives: Vec<usize>,
}

fn dist2(a: &[f64; DIMS], b: &[f64; DIMS]) -> f64 {
    let mut s = 0.0;
    for d in 0..DIMS {
        let diff = a[d] - b[d];
        s += diff * diff;
    }
    s
}

/// Index of the nearest centroid (lowest index on exact ties).
fn nearest(point: &[f64; DIMS], centroids: &[[f64; DIMS]]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = dist2(point, centroid);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

/// k-means++ seeding: first center uniform, each further center drawn
/// with probability proportional to its squared distance from the
/// nearest already-chosen center.
fn seed_centroids(points: &[[f64; DIMS]], k: usize, rng: &mut Rng) -> Vec<[f64; DIMS]> {
    let n = points.len();
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[(rng.next_u64() % n as u64) as usize]);
    let mut d2: Vec<f64> = points.iter().map(|p| dist2(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let idx = if total > 0.0 {
            let mut target = rng.next_f64() * total;
            let mut chosen = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            chosen
        } else {
            // all points coincide with a center; any pick is equivalent
            (rng.next_u64() % n as u64) as usize
        };
        let c = points[idx];
        for (i, p) in points.iter().enumerate() {
            d2[i] = d2[i].min(dist2(p, &c));
        }
        centroids.push(c);
    }
    centroids
}

const MAX_ITERS: usize = 100;

/// Independent k-means++ restarts per [`cluster`] call; the run with the
/// lowest within-cluster sum of squares wins. Restarts are the standard
/// SimPoint defence against an unlucky seeding leaving a whole behaviour
/// region represented by a far-away centroid, which shows up directly as
/// reconstruction bias on phase-heavy workloads.
const RESTARTS: usize = 8;

/// One k-means++ run from one seeding. Returns the assignment, final
/// centroids and within-cluster sum of squares.
fn run_once(
    points: &[[f64; DIMS]],
    k: usize,
    rng: &mut Rng,
) -> (Vec<usize>, Vec<[f64; DIMS]>, f64) {
    let mut centroids = seed_centroids(points, k, rng);
    let mut assignment: Vec<usize> = points.iter().map(|p| nearest(p, &centroids)).collect();
    for _ in 0..MAX_ITERS {
        // recompute centroids; empty clusters keep their previous one
        let mut sums = vec![[0.0; DIMS]; k];
        let mut counts = vec![0usize; k];
        for (p, &c) in points.iter().zip(&assignment) {
            counts[c] += 1;
            for d in 0..DIMS {
                sums[c][d] += p[d];
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for d in 0..DIMS {
                    centroids[c][d] = sums[c][d] / counts[c] as f64;
                }
            }
        }
        let next: Vec<usize> = points.iter().map(|p| nearest(p, &centroids)).collect();
        let converged = next == assignment;
        assignment = next;
        if converged {
            break;
        }
    }
    let wcss = points
        .iter()
        .zip(&assignment)
        .map(|(p, &c)| dist2(p, &centroids[c]))
        .sum();
    (assignment, centroids, wcss)
}

/// Cluster `points` into (at most) `k` groups. With `k >= len`, every
/// point is its own cluster — the degenerate exact-sampling case.
///
/// # Panics
///
/// Panics if `points` is empty or `k` is zero.
#[must_use]
pub fn cluster(points: &[[f64; DIMS]], k: usize, seed: u64) -> Clustering {
    assert!(!points.is_empty(), "cannot cluster zero points");
    assert!(k > 0, "k must be positive");
    let n = points.len();
    if k >= n {
        return Clustering {
            assignment: (0..n).collect(),
            representatives: (0..n).collect(),
        };
    }

    // All restarts draw from one deterministic stream, so the whole
    // selection is still a pure function of (points, k, seed).
    let mut rng = Rng::new(seed);
    let (mut assignment, mut centroids, mut best_wcss) = run_once(points, k, &mut rng);
    for _ in 1..RESTARTS {
        let (a, c, w) = run_once(points, k, &mut rng);
        if w < best_wcss {
            assignment = a;
            centroids = c;
            best_wcss = w;
        }
    }

    // representative = member closest to its centroid, lowest index wins
    let mut rep: Vec<Option<(usize, f64)>> = vec![None; k];
    for (i, (p, &c)) in points.iter().zip(&assignment).enumerate() {
        let d = dist2(p, &centroids[c]);
        match rep[c] {
            Some((_, best)) if best <= d => {}
            _ => rep[c] = Some((i, d)),
        }
    }
    let mut representatives: Vec<usize> = rep.into_iter().flatten().map(|(i, _)| i).collect();
    representatives.sort_unstable();
    Clustering {
        assignment,
        representatives,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: f64, n: usize, spread: f64) -> Vec<[f64; DIMS]> {
        (0..n)
            .map(|i| {
                let off = spread * (i as f64 / n as f64 - 0.5);
                [center + off; DIMS]
            })
            .collect()
    }

    #[test]
    fn separated_blobs_are_separated() {
        let mut pts = blob(0.1, 10, 0.05);
        pts.extend(blob(0.9, 10, 0.05));
        let c = cluster(&pts, 2, 42);
        // all points of a blob share a cluster, and the blobs differ
        assert!(c.assignment[..10].iter().all(|&a| a == c.assignment[0]));
        assert!(c.assignment[10..].iter().all(|&a| a == c.assignment[10]));
        assert_ne!(c.assignment[0], c.assignment[10]);
        assert_eq!(c.representatives.len(), 2);
        // one representative from each blob
        assert!(c.representatives[0] < 10 && c.representatives[1] >= 10);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut pts = blob(0.2, 17, 0.3);
        pts.extend(blob(0.7, 23, 0.25));
        let a = cluster(&pts, 4, 0xD00D);
        let b = cluster(&pts, 4, 0xD00D);
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_k_at_least_n() {
        let pts = blob(0.5, 3, 0.1);
        for k in [3, 5, 100] {
            let c = cluster(&pts, k, 1);
            assert_eq!(c.assignment, vec![0, 1, 2]);
            assert_eq!(c.representatives, vec![0, 1, 2]);
        }
    }

    #[test]
    fn identical_points_collapse() {
        let pts = vec![[0.5; DIMS]; 8];
        let c = cluster(&pts, 3, 9);
        // every representative is a valid index and assignment covers
        // each point exactly once
        assert_eq!(c.assignment.len(), 8);
        assert!(!c.representatives.is_empty());
        assert!(c.representatives.iter().all(|&r| r < 8));
    }

    #[test]
    fn representatives_are_cluster_members() {
        let mut pts = blob(0.1, 12, 0.2);
        pts.extend(blob(0.55, 9, 0.2));
        pts.extend(blob(0.95, 7, 0.1));
        let c = cluster(&pts, 3, 77);
        for &r in &c.representatives {
            // the representative's own assignment names the cluster it
            // represents; membership is by construction
            assert!(r < pts.len());
        }
        let mut reps_sorted = c.representatives.clone();
        reps_sorted.dedup();
        assert_eq!(reps_sorted.len(), c.representatives.len());
    }
}
