//! # chrome-simpoint — representative-interval sampling
//!
//! SimPoint-style sampled simulation over `.ctf` trace files ("Improving
//! the Representativeness of Simulation Intervals for the Cache Memory
//! System"; Sherwood et al.'s SimPoint; SMARTS-style functional warmup):
//!
//! * [`features`] — per-interval feature vectors derived from the
//!   footer's `IntervalStats` (memory intensity, store/dependence mix,
//!   footprint, reuse, span), min-max normalized. Files recorded before
//!   interval stats existed are recomputed on the fly by
//!   `TraceFile::intervals_for`.
//! * [`kmeans`] — deterministic k-means++ (seeded from
//!   `chrome_exec::workload_seed`, fixed iteration order, lowest-index
//!   tie-breaks) over those vectors; every run of the same trace and
//!   spec picks identical representatives at any job count.
//! * [`plan`] — turns cluster representatives into a
//!   [`chrome_sim::SampledInterval`] replay plan: per-core start
//!   positions from the per-core interval sums, a detailed-but-
//!   unmeasured timing ramp, and instruction-share cluster weights.
//! * [`reconstruct`] — weighted reconstruction of full-run IPC / MPKI /
//!   C-AMAT from the per-interval `SimResults`, plus the sampled-vs-full
//!   error rows the `simpoint validate` gate asserts on.

pub mod features;
pub mod kmeans;
pub mod plan;
pub mod reconstruct;

pub use features::{extract_features, FeatureSet};
pub use kmeans::{cluster, Clustering};
pub use plan::{build_plan, build_plan_windowed, SamplingSpec, Segment, WorkloadPlan};
pub use reconstruct::{
    aggregate_camat, aggregate_ipc, aggregate_mpki, reconstruct, ErrorRow, Reconstructed,
};
