//! Sampling specs and sampled-replay plans.
//!
//! A [`SamplingSpec`] is the grid-visible knob (`k=<k>,ramp=<n>` with
//! an optional `,reps=<m>`): how many clusters to form, how many
//! detailed-but-unmeasured instructions to run before each measurement
//! window, and how many representatives to measure per cluster.
//! [`build_plan`] turns a trace file plus a seed into a
//! [`WorkloadPlan`] — per-core start positions, per-segment measurement
//! budgets and cluster weights — which `to_sim_plan` lowers to the
//! simulator's [`chrome_sim::SampledInterval`] form.

use chrome_sim::SampledInterval;
use chrome_tracefile::{TraceFile, TraceFileError};

use crate::features::{extract_features_with_regions, region_histograms};
use crate::kmeans::cluster;

/// Parsed form of the `k=<k>,ramp=<n>[,reps=<m>]` sampling axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingSpec {
    /// Number of behaviour clusters per workload.
    pub k: usize,
    /// Detailed-but-unmeasured instructions per core run before each
    /// measurement window, to warm timing state (ROB, MSHRs, DRAM
    /// queues) that functional warmup deliberately skips.
    pub ramp: u64,
    /// Representatives measured per cluster (≥ 1). One rep estimates a
    /// cluster by its centroid-closest member alone; more reps spread
    /// across the cluster (farthest-point traversal) and split its
    /// weight, shrinking the estimator's rep-selection variance.
    pub reps: usize,
}

impl SamplingSpec {
    /// Parse `"k=<k>,ramp=<n>"` or `"k=<k>,ramp=<n>,reps=<m>"` (fixed
    /// field order, no other spellings — the canonical rendering is
    /// part of checkpoint identity, so exactly one spelling per value
    /// is legal; `reps=1` must be spelled by omission).
    pub fn parse(s: &str) -> Result<SamplingSpec, String> {
        let mut parts = s.split(',');
        let k = parts
            .next()
            .and_then(|p| p.strip_prefix("k="))
            .ok_or_else(|| format!("sampling spec `{s}`: expected `k=<k>,ramp=<n>[,reps=<m>]`"))?
            .parse::<usize>()
            .map_err(|e| format!("sampling spec `{s}`: bad k: {e}"))?;
        let ramp = parts
            .next()
            .and_then(|p| p.strip_prefix("ramp="))
            .ok_or_else(|| format!("sampling spec `{s}`: expected `k=<k>,ramp=<n>[,reps=<m>]`"))?
            .parse::<u64>()
            .map_err(|e| format!("sampling spec `{s}`: bad ramp: {e}"))?;
        let reps = match parts.next() {
            None => 1,
            Some(p) => p
                .strip_prefix("reps=")
                .ok_or_else(|| format!("sampling spec `{s}`: expected `reps=<m>` third field"))?
                .parse::<usize>()
                .map_err(|e| format!("sampling spec `{s}`: bad reps: {e}"))?,
        };
        if parts.next().is_some() {
            return Err(format!("sampling spec `{s}`: trailing fields"));
        }
        if k == 0 {
            return Err(format!("sampling spec `{s}`: k must be positive"));
        }
        if reps < 2 && s.contains("reps=") {
            return Err(format!("sampling spec `{s}`: reps < 2 must be omitted"));
        }
        Ok(SamplingSpec { k, ramp, reps })
    }

    /// Canonical rendering; `parse(render()) == self`. `reps=1` is
    /// rendered by omission so legacy `k=…,ramp=…` strings (and the
    /// cell hashes derived from them) are unchanged.
    #[must_use]
    pub fn render(&self) -> String {
        if self.reps > 1 {
            format!("k={},ramp={},reps={}", self.k, self.ramp, self.reps)
        } else {
            format!("k={},ramp={}", self.k, self.ramp)
        }
    }
}

/// One representative interval in a workload's sampling plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Aligned interval index this segment represents.
    pub interval: usize,
    /// Fraction of the workload's instructions its cluster covers.
    pub weight: f64,
    /// Per-core absolute fetch positions where the interval begins.
    pub start: Vec<u64>,
    /// Measured instructions per core (the shortest core's interval
    /// length, so no core's measurement spills into its next interval).
    pub detail: u64,
}

/// A complete sampling plan for one workload trace.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadPlan {
    /// The spec the plan was built from.
    pub spec: SamplingSpec,
    /// Segments ordered by interval index (and thus by start position).
    pub segments: Vec<Segment>,
    /// Instructions (summed over cores) across all aligned intervals —
    /// what the weights are shares of.
    pub total_instructions: u64,
    /// Detailed instructions per core the plan will simulate
    /// (ramp + measured, summed over segments).
    pub detailed_instructions: u64,
    /// Per-core cumulative fetch positions at every aligned interval
    /// boundary (`n + 1` entries each, starting at 0) — the grid a
    /// functional profiling pass walks and reconstruction weights over.
    pub boundaries: Vec<Vec<u64>>,
    /// The measured window `[skip, end)` in per-core instructions that
    /// the weights are shares of.
    pub window: (u64, u64),
}

impl WorkloadPlan {
    /// Lower to the simulator's replay form.
    #[must_use]
    pub fn to_sim_plan(&self) -> Vec<SampledInterval> {
        self.segments
            .iter()
            .map(|s| SampledInterval {
                start: s.start.clone(),
                ramp: self.spec.ramp,
                detail: s.detail,
            })
            .collect()
    }

    /// Detail-reduction factor versus a full run of `full_instructions`
    /// measured instructions per core (warmup included in both sides).
    #[must_use]
    pub fn reduction(&self, full_instructions: u64) -> f64 {
        if self.detailed_instructions == 0 {
            0.0
        } else {
            full_instructions as f64 / self.detailed_instructions as f64
        }
    }
}

/// Build the sampling plan for `tf`: extract features from the footer's
/// interval stats (recomputing them for pre-interval-stats files),
/// cluster with the deterministic seed, and emit one segment per
/// cluster representative with instruction-share weights.
///
/// Fewer aligned intervals than `k` degrades gracefully to exact
/// sampling (every interval is its own segment).
pub fn build_plan(
    tf: &TraceFile,
    spec: SamplingSpec,
    seed: u64,
) -> Result<WorkloadPlan, TraceFileError> {
    build_plan_windowed(tf, spec, seed, 0, u64::MAX)
}

/// [`build_plan`] restricted to the measured window: only intervals
/// overlapping `[skip, skip + len)` per-core instructions participate,
/// and weights are their share of *overlapping* instructions. A grid
/// cell passes its `(warmup, instructions)` here so the reconstruction
/// estimates exactly what the full run measures — weighting the
/// warmup-only head or the never-measured tail would bias every metric
/// by their (unmeasured) behaviour.
pub fn build_plan_windowed(
    tf: &TraceFile,
    spec: SamplingSpec,
    seed: u64,
    skip: u64,
    len: u64,
) -> Result<WorkloadPlan, TraceFileError> {
    let cores = tf.manifest().cores.len();
    let mut per_core = Vec::with_capacity(cores);
    let mut regions = Vec::with_capacity(cores);
    for c in 0..cores {
        per_core.push(tf.intervals_for(c)?);
        // one linear decode per core feeds the region vectors; the
        // scalar footer stats alone cannot separate phases that touch
        // different parts of the address space
        regions.push(region_histograms(&tf.decode_core(c)?, &per_core[c]));
    }

    // per-core cumulative fetch positions at each interval boundary
    let mut cum: Vec<Vec<u64>> = Vec::with_capacity(cores);
    for intervals in &per_core {
        let mut acc = 0u64;
        let mut cur = Vec::with_capacity(intervals.len() + 1);
        cur.push(0);
        for iv in intervals {
            acc += iv.instructions;
            cur.push(acc);
        }
        cum.push(cur);
    }

    // functional-covariate columns: one functional pass over the whole
    // trace under the default policy (scheme-independent, so every
    // grid cell on the same trace clusters identically) yields each
    // interval's pseudo-CPI and LLC demand MPKI
    let n_aligned = per_core.iter().map(Vec::len).min().unwrap_or(0);
    let func: Vec<[f64; crate::features::FUNC_DIMS]> = {
        let mut sys =
            chrome_sim::System::new(chrome_sim::SimConfig::with_cores(cores), tf.sources()?);
        let profile = sys.run_functional_profile(&cum);
        (0..n_aligned)
            .map(|j| {
                let instr: u64 = per_core.iter().map(|core| core[j].instructions).sum();
                let instr = instr.max(1) as f64;
                [
                    profile.cycles[j] as f64 / instr,
                    profile.llc_misses[j] as f64 / instr * 1000.0,
                ]
            })
            .collect()
    };

    let features = extract_features_with_regions(&per_core, Some(&regions), Some(&func));
    assert!(
        !features.is_empty(),
        "trace {} has no aligned intervals to sample",
        tf.manifest().spec
    );

    // instruction weight of interval j = summed per-core overlap with
    // the measured window; out-of-window intervals drop out entirely
    let window_end = skip.saturating_add(len);
    let overlap: Vec<u64> = (0..features.len())
        .map(|j| {
            cum.iter()
                .map(|core| {
                    let lo = core[j].max(skip);
                    let hi = core[j + 1].min(window_end);
                    hi.saturating_sub(lo)
                })
                .sum()
        })
        .collect();
    let in_window: Vec<usize> = (0..features.len()).filter(|&j| overlap[j] > 0).collect();
    assert!(
        !in_window.is_empty(),
        "measured window [{skip}, {window_end}) overlaps no recorded interval"
    );
    let points: Vec<[f64; crate::features::DIMS]> =
        in_window.iter().map(|&j| features.norm[j]).collect();
    let clustering = cluster(&points, spec.k, seed);

    // cluster weight = its members' share of in-window instructions
    let total_instructions: u64 = in_window.iter().map(|&j| overlap[j]).sum();
    let n_clusters = clustering
        .assignment
        .iter()
        .copied()
        .max()
        .map_or(0, |m| m + 1);
    let mut cluster_instr = vec![0u64; n_clusters];
    for (p, &c) in clustering.assignment.iter().enumerate() {
        cluster_instr[c] += overlap[in_window[p]];
    }

    // reps=1: one segment per cluster, its centroid-closest member
    // (classic SimPoint). reps>1: a k·reps segment budget allocated to
    // clusters in proportion to their instruction weight (largest-
    // remainder rounding, every cluster keeps at least one), each
    // cluster sampled at evenly spaced temporal ranks. Equal per-
    // cluster allocation estimates the heavy clusters — where most of
    // the run lives — from a single centroid-ish member, which both
    // wastes budget on tiny clusters and biases the estimate toward
    // feature-average behaviour; weight-proportional rank-spread
    // sampling is the stratified estimator of the window mean.
    let mut chosen: Vec<(usize, usize)> = Vec::new(); // (point idx, cluster)
    if spec.reps <= 1 {
        chosen.extend(
            clustering
                .representatives
                .iter()
                .map(|&rep_p| (rep_p, clustering.assignment[rep_p])),
        );
    } else {
        let budget = spec.k.saturating_mul(spec.reps).min(points.len());
        let clusters: Vec<usize> = clustering
            .representatives
            .iter()
            .map(|&r| clustering.assignment[r])
            .collect();
        let sizes: Vec<usize> = clusters
            .iter()
            .map(|&c| clustering.assignment.iter().filter(|&&a| a == c).count())
            .collect();
        // every cluster keeps one segment; hand the rest out one at a
        // time to the cluster with the largest weight deficit (lowest
        // index on ties — deterministic), capped at its member count
        let mut alloc = vec![1usize; clusters.len()];
        let mut spare = budget.saturating_sub(clusters.len());
        while spare > 0 {
            let mut best: Option<(f64, usize)> = None;
            for (i, &c) in clusters.iter().enumerate() {
                if alloc[i] >= sizes[i] {
                    continue;
                }
                let target =
                    cluster_instr[c] as f64 / total_instructions.max(1) as f64 * budget as f64;
                let deficit = target - alloc[i] as f64;
                match best {
                    Some((bd, _)) if bd >= deficit => {}
                    _ => best = Some((deficit, i)),
                }
            }
            let Some((_, i)) = best else { break };
            alloc[i] += 1;
            spare -= 1;
        }
        for (i, &c) in clusters.iter().enumerate() {
            let members: Vec<usize> = (0..points.len())
                .filter(|&p| clustering.assignment[p] == c)
                .collect();
            let m = alloc[i].min(members.len());
            let mut picked: Vec<usize> = (0..m)
                .map(|j| members[(j * 2 + 1) * members.len() / (m * 2)])
                .collect();
            picked.dedup();
            chosen.extend(picked.into_iter().map(|p| (p, c)));
        }
    }
    // the simulator replays forward only: segments sorted by position
    chosen.sort_unstable();
    let mut cluster_reps = vec![0usize; n_clusters];
    for &(_, c) in &chosen {
        cluster_reps[c] += 1;
    }

    let mut segments = Vec::with_capacity(chosen.len());
    let mut detailed_instructions = 0u64;
    for &(rep_p, c) in &chosen {
        let rep = in_window[rep_p];
        let start: Vec<u64> = cum.iter().map(|core| core[rep]).collect();
        let detail = per_core
            .iter()
            .map(|core| core[rep].instructions)
            .min()
            .unwrap_or(0)
            .max(1);
        detailed_instructions += spec.ramp + detail;
        segments.push(Segment {
            interval: rep,
            weight: if total_instructions == 0 {
                0.0
            } else {
                cluster_instr[c] as f64 / total_instructions as f64 / cluster_reps[c] as f64
            },
            start,
            detail,
        });
    }
    Ok(WorkloadPlan {
        spec,
        segments,
        total_instructions,
        detailed_instructions,
        boundaries: cum
            .iter()
            .map(|core| core[..=features.len()].to_vec())
            .collect(),
        window: (skip, window_end),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chrome_sim::rng::SmallRng;
    use chrome_sim::trace::TraceSource;
    use chrome_sim::types::{AccessKind, TraceRecord};
    use chrome_tracefile::{record_sources, Codec};
    use std::path::PathBuf;

    #[test]
    fn spec_parse_render_roundtrip() {
        for s in ["k=1,ramp=0", "k=5,ramp=2000", "k=30,ramp=123456"] {
            let spec = SamplingSpec::parse(s).unwrap();
            assert_eq!(spec.render(), s);
            assert_eq!(SamplingSpec::parse(&spec.render()).unwrap(), spec);
        }
    }

    #[test]
    fn spec_parse_rejects_malformed() {
        for s in [
            "",
            "k=5",
            "ramp=5,k=2",
            "k=0,ramp=10",
            "k=5,ramp=10,extra=1",
            "k=x,ramp=10",
            "k=5,ramp=-2",
        ] {
            assert!(SamplingSpec::parse(s).is_err(), "accepted `{s}`");
        }
    }

    struct Phased {
        rng: SmallRng,
        i: u64,
    }

    impl TraceSource for Phased {
        fn next_record(&mut self) -> TraceRecord {
            // two alternating phases with very different locality
            self.i += 1;
            let phase = (self.i / 512).is_multiple_of(2);
            let vaddr = if phase {
                0x10_000 + (self.i % 16) * 64
            } else {
                self.rng.next_u64() | 1
            };
            TraceRecord {
                nonmem_before: if phase { 2 } else { 9 },
                pc: 0x400_000 + (self.i % 97) * 4,
                vaddr,
                kind: if self.i.is_multiple_of(4) {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                },
                dep_prev: !phase && self.i.is_multiple_of(3),
            }
        }
        fn name(&self) -> &str {
            "phased"
        }
    }

    fn phased_trace(cores: usize, quota: u64, interval: u64) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("chrome-simpoint-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("plan-{cores}-{quota}-{interval}.ctf"));
        let sources: Vec<Box<dyn TraceSource>> = (0..cores)
            .map(|c| {
                Box::new(Phased {
                    rng: SmallRng::seed_from_u64(0xAB + c as u64),
                    i: c as u64 * 131,
                }) as Box<dyn TraceSource>
            })
            .collect();
        record_sources(&path, sources, "test", quota, Codec::Compact, interval).unwrap();
        path
    }

    #[test]
    fn plan_is_deterministic_and_sorted() {
        let path = phased_trace(2, 40_000, 1_000);
        let tf = TraceFile::open(&path).unwrap();
        let spec = SamplingSpec {
            k: 5,
            ramp: 500,
            reps: 1,
        };
        let a = build_plan(&tf, spec, 0x5EED).unwrap();
        let b = build_plan(&tf, spec, 0x5EED).unwrap();
        assert_eq!(a, b);
        assert!(!a.segments.is_empty() && a.segments.len() <= 5);
        // sorted by interval index and by every core's start position
        for w in a.segments.windows(2) {
            assert!(w[0].interval < w[1].interval);
            for (s0, s1) in w[0].start.iter().zip(&w[1].start) {
                assert!(s0 < s1);
            }
        }
        let total_w: f64 = a.segments.iter().map(|s| s.weight).sum();
        assert!((total_w - 1.0).abs() < 1e-9, "weights sum to {total_w}");
    }

    #[test]
    fn plan_starts_match_interval_boundaries() {
        let path = phased_trace(1, 20_000, 1_000);
        let tf = TraceFile::open(&path).unwrap();
        let plan = build_plan(
            &tf,
            SamplingSpec {
                k: 3,
                ramp: 100,
                reps: 1,
            },
            7,
        )
        .unwrap();
        let intervals = tf.intervals_for(0).unwrap();
        for seg in &plan.segments {
            let expect: u64 = intervals[..seg.interval]
                .iter()
                .map(|i| i.instructions)
                .sum();
            assert_eq!(seg.start, vec![expect]);
            assert!(seg.detail <= intervals[seg.interval].instructions);
        }
        let sim_plan = plan.to_sim_plan();
        assert_eq!(sim_plan.len(), plan.segments.len());
        assert!(sim_plan.iter().all(|s| s.ramp == 100));
    }

    #[test]
    fn degenerate_small_trace_samples_every_interval() {
        let path = phased_trace(1, 3_000, 1_000);
        let tf = TraceFile::open(&path).unwrap();
        let n = tf.intervals_for(0).unwrap().len();
        let plan = build_plan(
            &tf,
            SamplingSpec {
                k: 50,
                ramp: 0,
                reps: 1,
            },
            1,
        )
        .unwrap();
        assert_eq!(plan.segments.len(), n);
        for (j, seg) in plan.segments.iter().enumerate() {
            assert_eq!(seg.interval, j);
        }
    }
}
