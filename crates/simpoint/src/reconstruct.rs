//! Weighted reconstruction of full-run metrics from sampled intervals.
//!
//! Each representative interval's `SimResults` stands in for its whole
//! cluster; cluster weights are instruction shares, so the right
//! averages are the instruction-weighted ones:
//!
//! * **IPC** — cycles-per-instruction is additive over instructions, so
//!   per core `cpi = Σ wⱼ·cpiⱼ` and `ipc = 1/cpi` (weighted harmonic
//!   mean); the aggregate is the per-core sum, matching
//!   `SimResults::ipc_sum`.
//! * **MPKI** — misses-per-kilo-instruction is already an
//!   instruction-normalized rate, so the weighted arithmetic mean is
//!   exact.
//! * **C-AMAT** — a ratio of two instruction-normalized rates
//!   (active cycles per instruction over accesses per instruction);
//!   reconstruct numerator and denominator separately, then divide.

use chrome_sim::stats::SimResults;

/// Aggregate IPC of one run: sum of per-core IPCs (the grid's
/// throughput metric).
#[must_use]
pub fn aggregate_ipc(r: &SimResults) -> f64 {
    r.ipc_sum()
}

/// Aggregate LLC MPKI of one run.
#[must_use]
pub fn aggregate_mpki(r: &SimResults) -> f64 {
    r.llc_mpki()
}

/// Aggregate C-AMAT at the LLC: total memory-active cycles over total
/// LLC accesses, pooled across cores.
#[must_use]
pub fn aggregate_camat(r: &SimResults) -> f64 {
    let active: u64 = r.per_core.iter().map(|c| c.llc_active_cycles).sum();
    let accesses: u64 = r.per_core.iter().map(|c| c.llc_accesses).sum();
    if accesses == 0 {
        0.0
    } else {
        active as f64 / accesses as f64
    }
}

/// Full-run estimates reconstructed from weighted interval results.
#[derive(Debug, Clone, PartialEq)]
pub struct Reconstructed {
    /// Estimated aggregate IPC (sum of per-core IPCs).
    pub ipc: f64,
    /// Estimated per-core IPCs (weighted harmonic means).
    pub per_core_ipc: Vec<f64>,
    /// Estimated LLC MPKI.
    pub mpki: f64,
    /// Estimated LLC C-AMAT (cycles per access).
    pub camat: f64,
}

/// Reconstruct full-run metrics from per-interval results and cluster
/// weights.
///
/// # Panics
///
/// Panics if `weights` and `results` differ in length, are empty, or
/// the runs disagree on core count.
#[must_use]
pub fn reconstruct(weights: &[f64], results: &[SimResults]) -> Reconstructed {
    assert_eq!(weights.len(), results.len(), "one weight per interval");
    assert!(!results.is_empty(), "nothing to reconstruct");
    let cores = results[0].per_core.len();
    assert!(results.iter().all(|r| r.per_core.len() == cores));
    let wsum: f64 = weights.iter().sum();
    assert!(wsum > 0.0, "weights must not all be zero");

    // IPC: weighted harmonic per core, then summed
    let mut per_core_ipc = Vec::with_capacity(cores);
    for c in 0..cores {
        let mut cpi = 0.0;
        for (w, r) in weights.iter().zip(results) {
            let interval_ipc = r.per_core[c].ipc();
            if interval_ipc > 0.0 {
                cpi += w / wsum / interval_ipc;
            }
        }
        per_core_ipc.push(if cpi > 0.0 { 1.0 / cpi } else { 0.0 });
    }
    let ipc = per_core_ipc.iter().sum();

    // MPKI: weighted arithmetic mean of an instruction-normalized rate
    let mpki = weights
        .iter()
        .zip(results)
        .map(|(w, r)| w / wsum * aggregate_mpki(r))
        .sum();

    // C-AMAT: weighted per-instruction rates, divided at the end
    let mut active_rate = 0.0;
    let mut access_rate = 0.0;
    for (w, r) in weights.iter().zip(results) {
        let instr: u64 = r.per_core.iter().map(|c| c.instructions).sum();
        if instr == 0 {
            continue;
        }
        let active: u64 = r.per_core.iter().map(|c| c.llc_active_cycles).sum();
        let accesses: u64 = r.per_core.iter().map(|c| c.llc_accesses).sum();
        active_rate += w / wsum * active as f64 / instr as f64;
        access_rate += w / wsum * accesses as f64 / instr as f64;
    }
    let camat = if access_rate > 0.0 {
        active_rate / access_rate
    } else {
        0.0
    };

    Reconstructed {
        ipc,
        per_core_ipc,
        mpki,
        camat,
    }
}

/// Reconstruct full-run metrics using a functional profiling pass as a
/// control variate (regression estimator).
///
/// The plain stratified estimator's error is the within-cluster spread
/// of the metrics themselves — irreducibly large for heavy-tailed
/// interval distributions at any affordable segment count. The
/// functional pass walks *every* aligned interval with the same
/// hierarchy (its pseudo-clock CPI and LLC misses track the detailed
/// model closely), so for each metric we estimate
///
/// ```text
/// full ≈ d̄ + β·(F − f̄)      β = Cov(d, f) / Var(f)
/// ```
///
/// where `d̄` is the weighted sampled mean of the detailed metric, `f̄`
/// the same weighting of the functional metric over the sampled
/// intervals, and `F` the functional total over *all* intervals. With
/// a faithful covariate `β → 1` (the full difference-estimator
/// correction); where the functional pseudo-clock is noisy for a
/// workload, `β` shrinks and the estimator degrades gracefully toward
/// the plain stratified one instead of injecting the covariate's
/// noise. β is estimated from the sampled pairs themselves (weighted,
/// clamped to [0, 2], shrunk by the pairs' r² — see
/// [`regression_estimate`]). IPC is corrected in CPI space per core
/// (additive over instructions), MPKI in per-instruction miss rate;
/// C-AMAT keeps the plain weighted estimator (the functional pass has
/// no MSHR/latency accounting to pair with).
///
/// # Panics
///
/// Panics if `results` disagrees with the plan's segment count, or the
/// profile is shorter than the plan's aligned interval grid.
#[must_use]
pub fn reconstruct_with_profile(
    plan: &crate::plan::WorkloadPlan,
    results: &[SimResults],
    profile: &chrome_sim::FunctionalProfile,
) -> Reconstructed {
    assert_eq!(
        plan.segments.len(),
        results.len(),
        "one measured result per plan segment"
    );
    assert!(!results.is_empty(), "nothing to reconstruct");
    let cores = results[0].per_core.len();
    assert_eq!(plan.boundaries.len(), cores, "plan cores match results");
    let n = plan.boundaries.iter().map(|b| b.len()).min().unwrap_or(1) - 1;
    assert!(
        profile.cycles.len() >= n && profile.llc_misses.len() >= n,
        "functional profile covers {} intervals, plan has {n}",
        profile.cycles.len()
    );
    let weights: Vec<f64> = plan.segments.iter().map(|s| s.weight).collect();
    let wsum: f64 = weights.iter().sum();
    assert!(wsum > 0.0, "weights must not all be zero");
    let (skip, end) = plan.window;

    // per-interval instruction counts and window overlaps
    let instr = |c: usize, j: usize| plan.boundaries[c][j + 1] - plan.boundaries[c][j];
    let ov = |c: usize, j: usize| {
        let lo = plan.boundaries[c][j].max(skip);
        let hi = plan.boundaries[c][j + 1].min(end);
        hi.saturating_sub(lo)
    };

    // functional per-interval rates
    let f_mpki = |j: usize| {
        let it: u64 = (0..cores).map(|c| instr(c, j)).sum();
        if it == 0 {
            0.0
        } else {
            profile.llc_misses[j] as f64 / it as f64 * 1000.0
        }
    };
    let f_cpi = |c: usize, j: usize| {
        let it = instr(c, j);
        if it == 0 {
            0.0
        } else {
            profile.cycles[j] as f64 / it as f64
        }
    };

    // functional totals over the measured window (overlap-weighted)
    let w_tot: f64 = (0..n)
        .map(|j| (0..cores).map(|c| ov(c, j)).sum::<u64>() as f64)
        .sum();
    let mut big_f_mpki = 0.0;
    for j in 0..n {
        let o: u64 = (0..cores).map(|c| ov(c, j)).sum();
        big_f_mpki += o as f64 / w_tot * f_mpki(j);
    }
    let mut big_f_cpi = vec![0.0; cores];
    for (c, f) in big_f_cpi.iter_mut().enumerate() {
        let wc: f64 = (0..n).map(|j| ov(c, j) as f64).sum();
        for j in 0..n {
            *f += ov(c, j) as f64 / wc * f_cpi(c, j);
        }
    }

    let pairs_mpki: Vec<(f64, f64, f64)> = plan
        .segments
        .iter()
        .zip(&weights)
        .zip(results)
        .map(|((seg, &w), r)| (w, aggregate_mpki(r), f_mpki(seg.interval)))
        .collect();
    let mpki = regression_estimate(&pairs_mpki, big_f_mpki).max(0.0);

    let mut cpi = vec![0.0; cores];
    for (c, cpi_c) in cpi.iter_mut().enumerate() {
        let pairs: Vec<(f64, f64, f64)> = plan
            .segments
            .iter()
            .zip(&weights)
            .zip(results)
            .map(|((seg, &w), r)| {
                let ipc = r.per_core[c].ipc();
                let d = if ipc > 0.0 { 1.0 / ipc } else { 0.0 };
                (w, d, f_cpi(c, seg.interval))
            })
            .collect();
        *cpi_c = regression_estimate(&pairs, big_f_cpi[c]);
    }
    let per_core_ipc: Vec<f64> = cpi
        .iter()
        .map(|&c| if c > 1e-12 { 1.0 / c } else { 0.0 })
        .collect();

    Reconstructed {
        ipc: per_core_ipc.iter().sum(),
        per_core_ipc,
        mpki,
        camat: reconstruct(&weights, results).camat,
    }
}

/// Weighted regression (control-variate) estimate from `(weight,
/// detailed, functional)` sample pairs and the functional population
/// total `big_f`: `d̄ + r²·β·(F − f̄)` with `β = Cov(d, f)/Var(f)`
/// clamped to `[0, 2]` and `r²` the weighted coefficient of
/// determination between the pairs. The `r²` shrinkage is what keeps
/// the correction honest: when the covariate genuinely tracks the
/// detailed metric (r² ≈ 1, e.g. a phase-y miss series) the full
/// difference-estimator correction applies, but when clustering has
/// already absorbed the covariate's variation the residual correlation
/// is noise, a raw β would be fit to that noise, and scaling by r² ≈ 0
/// backs off to the plain stratified estimate instead of injecting the
/// noise into the result. A near-constant covariate or metric also
/// yields a zero correction.
fn regression_estimate(pairs: &[(f64, f64, f64)], big_f: f64) -> f64 {
    let wsum: f64 = pairs.iter().map(|p| p.0).sum();
    if wsum <= 0.0 {
        return 0.0;
    }
    let d_bar: f64 = pairs.iter().map(|p| p.0 / wsum * p.1).sum();
    let f_bar: f64 = pairs.iter().map(|p| p.0 / wsum * p.2).sum();
    let cov: f64 = pairs
        .iter()
        .map(|p| p.0 / wsum * (p.1 - d_bar) * (p.2 - f_bar))
        .sum();
    let var_f: f64 = pairs
        .iter()
        .map(|p| p.0 / wsum * (p.2 - f_bar) * (p.2 - f_bar))
        .sum();
    let var_d: f64 = pairs
        .iter()
        .map(|p| p.0 / wsum * (p.1 - d_bar) * (p.1 - d_bar))
        .sum();
    let beta = if var_f > 1e-12 && var_d > 1e-12 {
        let r2 = (cov * cov / (var_f * var_d)).min(1.0);
        r2 * (cov / var_f).clamp(0.0, 2.0)
    } else {
        0.0
    };
    d_bar + beta * (big_f - f_bar)
}

/// One row of a sampled-vs-full validation table.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorRow {
    /// Workload label.
    pub workload: String,
    /// Full-run aggregate IPC.
    pub full_ipc: f64,
    /// Reconstructed IPC.
    pub sampled_ipc: f64,
    /// Full-run LLC MPKI.
    pub full_mpki: f64,
    /// Reconstructed MPKI.
    pub sampled_mpki: f64,
    /// Full-run LLC C-AMAT.
    pub full_camat: f64,
    /// Reconstructed C-AMAT.
    pub sampled_camat: f64,
    /// Detail-reduction factor (full detailed instructions over sampled
    /// detailed instructions, per core).
    pub reduction: f64,
}

fn pct_err(full: f64, sampled: f64) -> f64 {
    if full == 0.0 {
        if sampled == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (sampled - full).abs() / full.abs() * 100.0
    }
}

impl ErrorRow {
    /// IPC error in percent of the full-run value.
    #[must_use]
    pub fn ipc_err_pct(&self) -> f64 {
        pct_err(self.full_ipc, self.sampled_ipc)
    }

    /// MPKI error in percent of the full-run value.
    #[must_use]
    pub fn mpki_err_pct(&self) -> f64 {
        pct_err(self.full_mpki, self.sampled_mpki)
    }

    /// C-AMAT error in percent of the full-run value.
    #[must_use]
    pub fn camat_err_pct(&self) -> f64 {
        pct_err(self.full_camat, self.sampled_camat)
    }

    /// TSV header matching [`ErrorRow::render`].
    #[must_use]
    pub fn header() -> String {
        "workload\tfull_ipc\tsampled_ipc\tipc_err_pct\tfull_mpki\tsampled_mpki\t\
         mpki_err_pct\tfull_camat\tsampled_camat\tcamat_err_pct\treduction"
            .to_string()
    }

    /// One TSV line (fixed precision so tables are byte-stable across
    /// job counts and platforms).
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}\t{:.6}\t{:.6}\t{:.3}\t{:.6}\t{:.6}\t{:.3}\t{:.6}\t{:.6}\t{:.3}\t{:.2}",
            self.workload,
            self.full_ipc,
            self.sampled_ipc,
            self.ipc_err_pct(),
            self.full_mpki,
            self.sampled_mpki,
            self.mpki_err_pct(),
            self.full_camat,
            self.sampled_camat,
            self.camat_err_pct(),
            self.reduction,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chrome_sim::stats::{CacheStats, CoreStats};

    fn run(ipc_num: u64, ipc_den: u64, misses: u64, active: u64, accesses: u64) -> SimResults {
        SimResults {
            per_core: vec![CoreStats {
                instructions: ipc_num,
                cycles: ipc_den,
                llc_accesses: accesses,
                llc_active_cycles: active,
                ..Default::default()
            }],
            llc: CacheStats {
                demand_misses: misses,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn identity_single_interval() {
        let r = run(1000, 2000, 5, 600, 20);
        let rec = reconstruct(&[1.0], std::slice::from_ref(&r));
        assert!((rec.ipc - aggregate_ipc(&r)).abs() < 1e-12);
        assert!((rec.mpki - aggregate_mpki(&r)).abs() < 1e-12);
        assert!((rec.camat - aggregate_camat(&r)).abs() < 1e-12);
    }

    #[test]
    fn equal_intervals_reconstruct_exactly() {
        // two identical intervals with any weight split give the
        // single-interval answer
        let r = run(1000, 2500, 7, 900, 30);
        let rec = reconstruct(&[0.3, 0.7], &[r.clone(), r.clone()]);
        assert!((rec.ipc - aggregate_ipc(&r)).abs() < 1e-12);
        assert!((rec.mpki - aggregate_mpki(&r)).abs() < 1e-12);
        assert!((rec.camat - aggregate_camat(&r)).abs() < 1e-12);
    }

    #[test]
    fn harmonic_ipc_matches_pooled_cycles() {
        // interval A: 1000 instr in 1000 cycles; interval B: 1000 instr
        // in 3000 cycles. A full run covering both halves equally has
        // ipc = 2000/4000 = 0.5 — the harmonic mean, not the arithmetic
        // (which would say 0.667).
        let a = run(1000, 1000, 0, 0, 0);
        let b = run(1000, 3000, 0, 0, 0);
        let rec = reconstruct(&[0.5, 0.5], &[a, b]);
        assert!((rec.ipc - 0.5).abs() < 1e-12, "got {}", rec.ipc);
    }

    #[test]
    fn mpki_is_weighted_arithmetic() {
        let a = run(1000, 1000, 10, 0, 0); // 10 mpki
        let b = run(1000, 1000, 30, 0, 0); // 30 mpki
        let rec = reconstruct(&[0.25, 0.75], &[a, b]);
        assert!((rec.mpki - 25.0).abs() < 1e-12);
    }

    #[test]
    fn camat_pools_rates_not_ratios() {
        // A: 100 active / 10 accesses (camat 10); B: 900 active / 30
        // accesses (camat 30); both over 1000 instructions. Pooled:
        // 1000 active / 40 accesses = 25 — not the access-blind mean 20.
        let a = run(1000, 1000, 0, 100, 10);
        let b = run(1000, 1000, 0, 900, 30);
        let rec = reconstruct(&[0.5, 0.5], &[a, b]);
        assert!((rec.camat - 25.0).abs() < 1e-12, "got {}", rec.camat);
    }

    #[test]
    fn weights_need_not_be_normalized() {
        let a = run(1000, 1000, 10, 100, 10);
        let b = run(1000, 3000, 30, 900, 30);
        let r1 = reconstruct(&[0.25, 0.75], &[a.clone(), b.clone()]);
        let r2 = reconstruct(&[1.0, 3.0], &[a, b]);
        assert!((r1.ipc - r2.ipc).abs() < 1e-12);
        assert!((r1.mpki - r2.mpki).abs() < 1e-12);
        assert!((r1.camat - r2.camat).abs() < 1e-12);
    }

    #[test]
    fn error_row_percentages_and_rendering() {
        let row = ErrorRow {
            workload: "mcf".into(),
            full_ipc: 2.0,
            sampled_ipc: 2.05,
            full_mpki: 10.0,
            sampled_mpki: 9.7,
            full_camat: 40.0,
            sampled_camat: 41.0,
            reduction: 12.5,
        };
        assert!((row.ipc_err_pct() - 2.5).abs() < 1e-9);
        assert!((row.mpki_err_pct() - 3.0).abs() < 1e-9);
        assert!((row.camat_err_pct() - 2.5).abs() < 1e-9);
        let line = row.render();
        assert!(line.starts_with("mcf\t"));
        assert_eq!(
            line.split('\t').count(),
            ErrorRow::header().split('\t').count()
        );
        // zero-vs-zero is 0% error, zero-vs-nonzero is unbounded
        assert_eq!(pct_err(0.0, 0.0), 0.0);
        assert!(pct_err(0.0, 1.0).is_infinite());
    }

    #[test]
    fn regression_recovers_exact_linear_relation() {
        // d = 2 + 0.5·f with no residual: r² = 1, β = 0.5, and the
        // estimate lands exactly on the population value 2 + 0.5·F no
        // matter how unrepresentative the sample mean is
        let pairs: Vec<(f64, f64, f64)> = [1.0, 4.0, 9.0]
            .iter()
            .map(|&f| (1.0, 2.0 + 0.5 * f, f))
            .collect();
        let est = regression_estimate(&pairs, 20.0);
        assert!((est - 12.0).abs() < 1e-9, "got {est}");
    }

    #[test]
    fn regression_with_flat_covariate_is_plain_mean() {
        // constant covariate ⇒ Var(f) = 0 ⇒ β = 0 ⇒ weighted mean of d
        let pairs = [(0.25, 10.0, 3.0), (0.75, 30.0, 3.0)];
        let est = regression_estimate(&pairs, 7.0);
        assert!((est - 25.0).abs() < 1e-9, "got {est}");
    }

    #[test]
    fn regression_ignores_uncorrelated_covariate() {
        // d symmetric around its mean while f varies: Cov = 0 ⇒ β = 0,
        // so a large F − f̄ gap injects nothing
        let pairs = [
            (1.0, 10.0, 1.0),
            (1.0, 20.0, 2.0),
            (1.0, 20.0, 0.0),
            (1.0, 10.0, 3.0),
        ];
        let est = regression_estimate(&pairs, 100.0);
        assert!((est - 15.0).abs() < 1e-9, "got {est}");
    }

    #[test]
    fn exhaustive_profile_reconstruction_matches_plain() {
        use crate::plan::{SamplingSpec, Segment, WorkloadPlan};
        // every interval sampled with its exact instruction share: the
        // functional totals equal the sampled functional mean (F = f̄),
        // the correction term vanishes, and the profile estimator must
        // agree with the plain weighted one
        let results = vec![run(1000, 1000, 10, 100, 10), run(1000, 3000, 30, 900, 30)];
        let plan = WorkloadPlan {
            spec: SamplingSpec {
                k: 2,
                ramp: 0,
                reps: 1,
            },
            segments: (0..2)
                .map(|j| Segment {
                    interval: j,
                    weight: 0.5,
                    start: vec![j as u64 * 1000],
                    detail: 1000,
                })
                .collect(),
            total_instructions: 2000,
            detailed_instructions: 2000,
            boundaries: vec![vec![0, 1000, 2000]],
            window: (0, 2000),
        };
        let profile = chrome_sim::FunctionalProfile {
            cycles: vec![1200, 2800],
            llc_misses: vec![12, 27],
        };
        let with = reconstruct_with_profile(&plan, &results, &profile);
        let plain = reconstruct(&[0.5, 0.5], &results);
        assert!((with.ipc - plain.ipc).abs() < 1e-9);
        assert!((with.mpki - plain.mpki).abs() < 1e-9);
        assert!((with.camat - plain.camat).abs() < 1e-9);
    }

    #[test]
    fn profile_correction_moves_toward_population() {
        use crate::plan::{SamplingSpec, Segment, WorkloadPlan};
        // three intervals, only the first two sampled; detailed MPKI
        // tracks the functional misses exactly (d = f), so the
        // estimator must recover the full-window functional mean —
        // including interval 2's unsampled spike — not the sample mean
        let results = vec![run(1000, 1000, 10, 0, 0), run(1000, 1000, 20, 0, 0)];
        let plan = WorkloadPlan {
            spec: SamplingSpec {
                k: 2,
                ramp: 0,
                reps: 1,
            },
            segments: (0..2)
                .map(|j| Segment {
                    interval: j,
                    weight: 0.5,
                    start: vec![j as u64 * 1000],
                    detail: 1000,
                })
                .collect(),
            total_instructions: 3000,
            detailed_instructions: 2000,
            boundaries: vec![vec![0, 1000, 2000, 3000]],
            window: (0, 3000),
        };
        let profile = chrome_sim::FunctionalProfile {
            cycles: vec![1000, 1000, 1000],
            llc_misses: vec![10, 20, 60],
        };
        let rec = reconstruct_with_profile(&plan, &results, &profile);
        // F = mean(10, 20, 60) = 30 mpki; sample mean alone is 15
        assert!((rec.mpki - 30.0).abs() < 1e-9, "got {}", rec.mpki);
    }
}
