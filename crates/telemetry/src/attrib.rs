//! Per-request latency-attribution profiling.
//!
//! The C-AMAT feedback signal is an *aggregate* over overlapped access
//! intervals; it says how many memory-active cycles each core paid, but
//! not *where* a single request's latency went. This module is the
//! ground-truth side of that ledger: each profiled request carries a
//! [`RequestSpan`] stamped at every stage transition of the memory
//! hierarchy (L1 lookup, MSHR waits, L2 lookup, LLC lookup, DRAM
//! queueing, row/CAS service, burst transfer, in-flight fill waits),
//! and the [`AttribProfiler`] folds finished spans into per-core,
//! per-kind stage tables plus per-stage latency histograms.
//!
//! Exactness is structural: a span is built from monotone timestamps,
//! so its per-stage cycles telescope to exactly `end - start`. The
//! profiler still re-checks the invariant on every record and counts
//! violations, which the integration tests pin to zero.

use crate::metrics::Histogram;

/// Number of attribution stages (the length of every stage array).
pub const STAGE_COUNT: usize = 10;

/// One lifecycle stage of a memory request.
///
/// Stage indices are stable (they name artifact columns); new stages
/// must be appended, never reordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Stage {
    /// L1D tag lookup / array access.
    L1Lookup = 0,
    /// Waiting on the L1 MSHR file (allocation stall or merge wait).
    L1MshrWait = 1,
    /// L2 tag lookup / array access.
    L2Lookup = 2,
    /// Waiting on the L2 MSHR file.
    L2MshrWait = 3,
    /// LLC tag lookup / array access.
    LlcLookup = 4,
    /// Waiting on the LLC MSHR file.
    LlcMshrWait = 5,
    /// DRAM bank/bus queueing (memory-controller wait).
    DramQueue = 6,
    /// DRAM array service: row activate (+ precharge) and CAS.
    DramService = 7,
    /// DRAM data-bus burst transfer.
    DramTransfer = 8,
    /// Waiting for a block whose fill is still in flight (hit on an
    /// eagerly-filled line at any level).
    FillWait = 9,
}

impl Stage {
    /// All stages, in index order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::L1Lookup,
        Stage::L1MshrWait,
        Stage::L2Lookup,
        Stage::L2MshrWait,
        Stage::LlcLookup,
        Stage::LlcMshrWait,
        Stage::DramQueue,
        Stage::DramService,
        Stage::DramTransfer,
        Stage::FillWait,
    ];

    /// Stable snake_case name (artifact column header).
    pub fn name(self) -> &'static str {
        match self {
            Stage::L1Lookup => "l1_lookup",
            Stage::L1MshrWait => "l1_mshr_wait",
            Stage::L2Lookup => "l2_lookup",
            Stage::L2MshrWait => "l2_mshr_wait",
            Stage::LlcLookup => "llc_lookup",
            Stage::LlcMshrWait => "llc_mshr_wait",
            Stage::DramQueue => "dram_queue",
            Stage::DramService => "dram_service",
            Stage::DramTransfer => "dram_transfer",
            Stage::FillWait => "fill_wait",
        }
    }

    /// The hierarchy level this stage belongs to.
    pub fn level(self) -> &'static str {
        match self {
            Stage::L1Lookup | Stage::L1MshrWait => "L1",
            Stage::L2Lookup | Stage::L2MshrWait => "L2",
            Stage::LlcLookup | Stage::LlcMshrWait => "LLC",
            Stage::DramQueue | Stage::DramService | Stage::DramTransfer => "DRAM",
            Stage::FillWait => "any",
        }
    }
}

/// The hierarchy level that ultimately satisfied a request. Requests
/// merged into an outstanding MSHR entry report the level of the merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ServiceLevel {
    /// Satisfied by the L1D.
    L1 = 0,
    /// Satisfied by the private L2.
    L2 = 1,
    /// Satisfied by the shared LLC.
    Llc = 2,
    /// Served from DRAM (including LLC-bypassed fills).
    Mem = 3,
}

/// Number of service levels.
pub const LEVEL_COUNT: usize = 4;

impl ServiceLevel {
    /// All levels, in index order.
    pub const ALL: [ServiceLevel; LEVEL_COUNT] = [
        ServiceLevel::L1,
        ServiceLevel::L2,
        ServiceLevel::Llc,
        ServiceLevel::Mem,
    ];

    /// Stable name.
    pub fn name(self) -> &'static str {
        match self {
            ServiceLevel::L1 => "L1",
            ServiceLevel::L2 => "L2",
            ServiceLevel::Llc => "LLC",
            ServiceLevel::Mem => "DRAM",
        }
    }
}

/// A finished per-request latency record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestSpan {
    /// Issuing core.
    pub core: u32,
    /// PC of the triggering access (0 for hardware prefetches).
    pub pc: u64,
    /// Line address.
    pub line: u64,
    /// True for prefetch-originated requests.
    pub is_prefetch: bool,
    /// True if the request merged with an outstanding MSHR entry.
    pub merged: bool,
    /// Cycle the request entered the hierarchy.
    pub start: u64,
    /// Cycle the data was available to the requester.
    pub end: u64,
    /// Level that satisfied the request.
    pub level: ServiceLevel,
    /// Cycle the request reached the LLC (`None` when satisfied above
    /// it) — the start of the interval `CamatTracker` accounts.
    pub llc_entry: Option<u64>,
    /// Cycles attributed to each [`Stage`], indexed by discriminant.
    pub stages: [u64; STAGE_COUNT],
}

impl RequestSpan {
    /// End-to-end latency in cycles.
    pub fn latency(&self) -> u64 {
        self.end - self.start
    }

    /// Sum of all per-stage cycles. Equals [`RequestSpan::latency`] for
    /// a correctly stamped span.
    pub fn stage_total(&self) -> u64 {
        self.stages.iter().sum()
    }

    /// Cycles spent at or below the LLC (`None` when the request never
    /// reached it).
    pub fn llc_latency(&self) -> Option<u64> {
        self.llc_entry.map(|t| self.end - t)
    }
}

/// Incremental builder stamped at each stage transition.
///
/// `mark(stage, t)` attributes the cycles since the previous stamp to
/// `stage`; `finish` attributes the remaining cycles to a tail stage
/// and seals the span. Because every stamp only moves time forward, the
/// per-stage cycles always telescope to `end - start` exactly.
#[derive(Debug, Clone)]
pub struct SpanBuilder {
    span: RequestSpan,
    last: u64,
}

impl SpanBuilder {
    /// Open a span for a request entering the hierarchy at `cycle`.
    pub fn start(core: u32, pc: u64, line: u64, is_prefetch: bool, cycle: u64) -> Self {
        SpanBuilder {
            span: RequestSpan {
                core,
                pc,
                line,
                is_prefetch,
                merged: false,
                start: cycle,
                end: cycle,
                level: ServiceLevel::L1,
                llc_entry: None,
                stages: [0; STAGE_COUNT],
            },
            last: cycle,
        }
    }

    /// Attribute the cycles from the previous stamp up to `t` to
    /// `stage`. Out-of-order stamps are tolerated (they attribute zero
    /// cycles); time never moves backward.
    #[inline]
    pub fn mark(&mut self, stage: Stage, t: u64) {
        self.span.stages[stage as usize] += t.saturating_sub(self.last);
        self.last = self.last.max(t);
    }

    /// Record the cycle the request reached the LLC.
    #[inline]
    pub fn mark_llc_entry(&mut self, t: u64) {
        self.span.llc_entry = Some(t);
    }

    /// Seal the span: remaining cycles up to `end` go to `tail`.
    pub fn finish(
        mut self,
        level: ServiceLevel,
        tail: Stage,
        end: u64,
        merged: bool,
    ) -> RequestSpan {
        debug_assert!(end >= self.last, "span finished before its last stamp");
        self.span.stages[tail as usize] += end.saturating_sub(self.last);
        self.span.end = end.max(self.last);
        self.span.level = level;
        self.span.merged = merged;
        self.span
    }
}

/// Per-core, per-kind accumulation of finished spans.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageAccum {
    /// Requests folded into this accumulator.
    pub requests: u64,
    /// Sum of end-to-end latencies.
    pub latency_cycles: u64,
    /// Cycles per stage, indexed by [`Stage`] discriminant.
    pub stages: [u64; STAGE_COUNT],
    /// Requests per [`ServiceLevel`], indexed by discriminant.
    pub by_level: [u64; LEVEL_COUNT],
    /// Requests that merged with an outstanding MSHR entry.
    pub merged: u64,
}

impl StageAccum {
    /// Fold one span in.
    fn add(&mut self, span: &RequestSpan) {
        self.requests += 1;
        self.latency_cycles += span.latency();
        for (acc, s) in self.stages.iter_mut().zip(&span.stages) {
            *acc += s;
        }
        self.by_level[span.level as usize] += 1;
        self.merged += span.merged as u64;
    }

    /// Merge another accumulator in (for whole-run roll-ups).
    pub fn merge(&mut self, other: &StageAccum) {
        self.requests += other.requests;
        self.latency_cycles += other.latency_cycles;
        for (a, b) in self.stages.iter_mut().zip(&other.stages) {
            *a += b;
        }
        for (a, b) in self.by_level.iter_mut().zip(&other.by_level) {
            *a += b;
        }
        self.merged += other.merged;
    }

    /// Sum over the stage array. Equals `latency_cycles` when every
    /// folded span was exact.
    pub fn stage_total(&self) -> u64 {
        self.stages.iter().sum()
    }
}

/// The latency-attribution profiler: aggregate stage tables, per-stage
/// histograms, and a bounded sample of raw spans for trace export.
#[derive(Debug, Clone)]
pub struct AttribProfiler {
    demand: Vec<StageAccum>,
    prefetch: Vec<StageAccum>,
    /// Per-stage histograms of nonzero per-request stage cycles
    /// (demand requests only).
    stage_hist: Vec<Histogram>,
    /// End-to-end demand latency histogram.
    latency_hist: Histogram,
    /// Sampled raw spans (bounded; newest kept up to capacity).
    spans: Vec<RequestSpan>,
    span_capacity: usize,
    span_next: usize,
    sample_every: u64,
    offered: u64,
    /// Spans whose stage sum differed from their end-to-end latency.
    mismatches: u64,
    /// Per-core `(cycles, count)` of demand spans that reached the LLC,
    /// measured from LLC entry — the profiler-side mirror of
    /// `CamatTracker`'s non-overlapped latency sums.
    llc_demand: Vec<(u64, u64)>,
}

impl Default for AttribProfiler {
    fn default() -> Self {
        Self::new(65_536, 1)
    }
}

impl AttribProfiler {
    /// A profiler keeping at most `span_capacity` raw spans, sampling
    /// every `sample_every`-th finished span into that buffer
    /// (aggregates always fold in every span).
    ///
    /// # Panics
    ///
    /// Panics if `span_capacity` or `sample_every` is zero.
    pub fn new(span_capacity: usize, sample_every: u64) -> Self {
        assert!(span_capacity > 0, "span capacity must be positive");
        assert!(sample_every > 0, "sample_every must be positive");
        AttribProfiler {
            demand: Vec::new(),
            prefetch: Vec::new(),
            stage_hist: (0..STAGE_COUNT).map(|_| Histogram::pow2(20)).collect(),
            latency_hist: Histogram::pow2(20),
            spans: Vec::new(),
            span_capacity,
            span_next: 0,
            sample_every,
            offered: 0,
            mismatches: 0,
            llc_demand: Vec::new(),
        }
    }

    fn ensure_core(&mut self, core: usize) {
        if self.demand.len() <= core {
            self.demand.resize_with(core + 1, StageAccum::default);
            self.prefetch.resize_with(core + 1, StageAccum::default);
            self.llc_demand.resize(core + 1, (0, 0));
        }
    }

    /// Fold a finished span into the tables (and maybe the sample).
    pub fn record(&mut self, span: RequestSpan) {
        let core = span.core as usize;
        self.ensure_core(core);
        if span.stage_total() != span.latency() {
            self.mismatches += 1;
        }
        if span.is_prefetch {
            self.prefetch[core].add(&span);
        } else {
            self.demand[core].add(&span);
            self.latency_hist.observe(span.latency());
            for (h, &cycles) in self.stage_hist.iter_mut().zip(&span.stages) {
                if cycles > 0 {
                    h.observe(cycles);
                }
            }
            if let Some(l) = span.llc_latency() {
                let (cycles, count) = &mut self.llc_demand[core];
                *cycles += l;
                *count += 1;
            }
        }
        let take = self.offered.is_multiple_of(self.sample_every);
        self.offered += 1;
        if take {
            if self.spans.len() < self.span_capacity {
                self.spans.push(span);
            } else {
                self.spans[self.span_next] = span;
            }
            self.span_next = (self.span_next + 1) % self.span_capacity;
        }
    }

    /// Per-core demand accumulators.
    pub fn demand(&self) -> &[StageAccum] {
        &self.demand
    }

    /// Per-core prefetch accumulators.
    pub fn prefetch(&self) -> &[StageAccum] {
        &self.prefetch
    }

    /// Demand + prefetch, all cores, rolled into one accumulator.
    pub fn combined(&self) -> StageAccum {
        let mut out = StageAccum::default();
        for a in self.demand.iter().chain(&self.prefetch) {
            out.merge(a);
        }
        out
    }

    /// Total spans recorded (demand + prefetch).
    pub fn total_requests(&self) -> u64 {
        self.offered
    }

    /// Spans whose stage sums did not telescope to their latency.
    pub fn mismatches(&self) -> u64 {
        self.mismatches
    }

    /// Per-core `(cycles, count)` of demand spans measured from LLC
    /// entry to completion.
    pub fn llc_demand(&self, core: usize) -> (u64, u64) {
        self.llc_demand.get(core).copied().unwrap_or((0, 0))
    }

    /// The retained raw spans (sampled, unordered beyond ring age).
    pub fn spans(&self) -> &[RequestSpan] {
        &self.spans
    }

    /// Histogram of nonzero per-request cycles for `stage` (demand).
    pub fn stage_histogram(&self, stage: Stage) -> &Histogram {
        &self.stage_hist[stage as usize]
    }

    /// Histogram of end-to-end demand latencies.
    pub fn latency_histogram(&self) -> &Histogram {
        &self.latency_hist
    }

    /// Drop everything recorded (measurement-boundary reset).
    pub fn clear(&mut self) {
        self.demand.clear();
        self.prefetch.clear();
        self.llc_demand.clear();
        for h in &mut self.stage_hist {
            *h = Histogram::pow2(20);
        }
        self.latency_hist = Histogram::pow2(20);
        self.spans.clear();
        self.span_next = 0;
        self.offered = 0;
        self.mismatches = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_demand(core: u32, start: u64) -> RequestSpan {
        let mut b = SpanBuilder::start(core, 0x400, 7, false, start);
        b.mark(Stage::L1Lookup, start + 4);
        b.mark(Stage::L2Lookup, start + 14);
        b.mark_llc_entry(start + 14);
        b.mark(Stage::LlcLookup, start + 54);
        b.mark(Stage::DramQueue, start + 60);
        b.mark(Stage::DramService, start + 160);
        b.finish(ServiceLevel::Mem, Stage::DramTransfer, start + 170, false)
    }

    #[test]
    fn span_telescopes_exactly() {
        let s = build_demand(0, 1000);
        assert_eq!(s.latency(), 170);
        assert_eq!(s.stage_total(), 170);
        assert_eq!(s.stages[Stage::L1Lookup as usize], 4);
        assert_eq!(s.stages[Stage::DramService as usize], 100);
        assert_eq!(s.stages[Stage::DramTransfer as usize], 10);
        assert_eq!(s.llc_latency(), Some(156));
    }

    #[test]
    fn out_of_order_marks_attribute_zero() {
        let mut b = SpanBuilder::start(0, 0, 0, false, 100);
        b.mark(Stage::L1Lookup, 110);
        b.mark(Stage::L2Lookup, 105); // stale stamp: zero cycles
        let s = b.finish(ServiceLevel::L2, Stage::FillWait, 120, false);
        assert_eq!(s.stage_total(), s.latency());
        assert_eq!(s.stages[Stage::L2Lookup as usize], 0);
        assert_eq!(s.stages[Stage::FillWait as usize], 10);
    }

    #[test]
    fn zero_latency_span_is_exact() {
        let b = SpanBuilder::start(1, 0, 0, false, 5);
        let s = b.finish(ServiceLevel::L1, Stage::L1Lookup, 5, false);
        assert_eq!(s.latency(), 0);
        assert_eq!(s.stage_total(), 0);
    }

    #[test]
    fn profiler_accumulates_per_core_and_kind() {
        let mut p = AttribProfiler::new(16, 1);
        p.record(build_demand(0, 0));
        p.record(build_demand(2, 50));
        let mut pf = build_demand(0, 100);
        pf.is_prefetch = true;
        p.record(pf);
        assert_eq!(p.demand().len(), 3);
        assert_eq!(p.demand()[0].requests, 1);
        assert_eq!(p.demand()[1].requests, 0);
        assert_eq!(p.demand()[2].requests, 1);
        assert_eq!(p.prefetch()[0].requests, 1);
        assert_eq!(p.total_requests(), 3);
        assert_eq!(p.mismatches(), 0);
        let all = p.combined();
        assert_eq!(all.requests, 3);
        assert_eq!(all.stage_total(), all.latency_cycles);
        assert_eq!(all.by_level[ServiceLevel::Mem as usize], 3);
    }

    #[test]
    fn profiler_counts_mismatched_spans() {
        let mut p = AttribProfiler::new(16, 1);
        let mut s = build_demand(0, 0);
        s.stages[0] += 1; // corrupt the ledger
        p.record(s);
        assert_eq!(p.mismatches(), 1);
    }

    #[test]
    fn llc_demand_mirror_tracks_reached_spans() {
        let mut p = AttribProfiler::new(16, 1);
        p.record(build_demand(0, 0)); // llc_latency = 156
        let mut b = SpanBuilder::start(0, 0, 1, false, 0);
        b.mark(Stage::L1Lookup, 4);
        let hit = b.finish(ServiceLevel::L1, Stage::FillWait, 4, false);
        p.record(hit); // never reached the LLC
        assert_eq!(p.llc_demand(0), (156, 1));
        assert_eq!(p.llc_demand(9), (0, 0));
    }

    #[test]
    fn span_ring_bounds_and_samples() {
        let mut p = AttribProfiler::new(4, 2);
        for i in 0..12 {
            p.record(build_demand(0, i * 10));
        }
        assert_eq!(p.spans().len(), 4, "ring is bounded");
        assert_eq!(p.total_requests(), 12);
        // every 2nd span offered -> 6 stored, ring keeps the newest 4
        assert_eq!(p.demand()[0].requests, 12, "aggregates see every span");
    }

    #[test]
    fn clear_resets_everything() {
        let mut p = AttribProfiler::new(8, 1);
        p.record(build_demand(0, 0));
        p.clear();
        assert_eq!(p.total_requests(), 0);
        assert!(p.spans().is_empty());
        assert!(p.demand().is_empty());
        assert_eq!(p.latency_histogram().count(), 0);
    }

    #[test]
    fn stage_names_are_unique() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), STAGE_COUNT);
    }
}
