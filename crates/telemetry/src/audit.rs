//! The per-decision audit trail: a bounded, lossy-counted binary log
//! of everything CHROME knew at each decision — feature-slice values,
//! per-action Q components, the chosen action, the EQ linkage id — plus
//! the reward each decision eventually received.
//!
//! The log is the forensics substrate: an offline pass joins it against
//! a Belady/MIN oracle to explain *why* individual decisions diverged
//! from optimal. It is deliberately binary (a decision record is ~100
//! bytes vs ~400 of JSONL) and deliberately bounded — when `cap`
//! records are held, further pushes increment `dropped` instead of
//! growing, so an audited run can never balloon its artifact.
//!
//! Encoding is little-endian with an explicit magic + version header
//! per segment. Multiple segments concatenate: the serving cache emits
//! one segment per shard, merged in shard-index order, which makes the
//! byte stream identical at any thread count (same discipline as the
//! servebench event JSONL).

/// Actions per decision (the paper's 7-action space).
pub const AUDIT_ACTIONS: usize = 7;
/// Feature slots per decision record (the engine's maximum arity).
pub const AUDIT_FEATURES: usize = 2;

/// Segment header magic: "CHAU".
const MAGIC: [u8; 4] = *b"CHAU";
/// Format version.
const VERSION: u16 = 1;
/// Record tags.
const TAG_DECISION: u8 = 1;
const TAG_REWARD: u8 = 2;

/// Everything known at decision time, snapshotted for the audit trail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionRecord {
    /// Monotonic per-engine decision id — the EQ linkage id. Reward
    /// records reference it.
    pub id: u64,
    /// The EQ match key (line address in the LLC, key hash in serve).
    pub key: u64,
    /// Feature-slice values (unused slots zero).
    pub state: [u64; AUDIT_FEATURES],
    /// Issuing lane (core / tenant).
    pub lane: u32,
    /// Number of active features in `state`.
    pub features: u8,
    /// The chosen action (paper encoding 0..=6).
    pub action: u8,
    /// True when the triggering access hit.
    pub hit: bool,
    /// True when the access landed on a sampled set/bucket (and was
    /// therefore recorded in the EQ and will be trained on).
    pub sampled: bool,
    /// True when ε-greedy exploration overrode the greedy choice.
    pub explored: bool,
    /// Per-feature Q components: `q[f][a]` is feature `f`'s vote for
    /// action `a`. The engine's Q(s,a) is the max over features, so
    /// these are what attribution needs.
    pub q: [[f32; AUDIT_ACTIONS]; AUDIT_FEATURES],
}

/// A reward assigned to an earlier decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RewardRecord {
    /// Decision id the reward was assigned to.
    pub id: u64,
    /// True when assigned by key match (re-requested in the EQ window);
    /// false when assigned at EQ eviction (dead-block reward).
    pub matched: bool,
    /// The reward value.
    pub reward: f64,
}

/// One audit-trail record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AuditRecord {
    /// A decision snapshot.
    Decision(DecisionRecord),
    /// A delayed reward, referencing an earlier decision.
    Reward(RewardRecord),
}

/// A bounded in-memory audit log for one stream (the hardware LLC, or
/// one serve shard).
#[derive(Debug)]
pub struct AuditLog {
    stream: u32,
    cap: usize,
    records: Vec<AuditRecord>,
    dropped: u64,
}

impl AuditLog {
    /// An empty log for `stream`, holding at most `cap` records.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(stream: u32, cap: usize) -> Self {
        assert!(cap > 0, "audit log needs a nonzero capacity");
        AuditLog {
            stream,
            cap,
            records: Vec::new(),
            dropped: 0,
        }
    }

    /// Which stream this log records (0 for the hardware LLC; the
    /// shard index in the serving cache).
    pub fn stream(&self) -> u32 {
        self.stream
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records refused because the log was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The held records, in arrival order.
    pub fn records(&self) -> &[AuditRecord] {
        &self.records
    }

    fn push(&mut self, r: AuditRecord) {
        if self.records.len() < self.cap {
            self.records.push(r);
        } else {
            self.dropped += 1;
        }
    }

    /// Append a decision snapshot (or count it dropped).
    pub fn push_decision(&mut self, d: DecisionRecord) {
        self.push(AuditRecord::Decision(d));
    }

    /// Append a reward record (or count it dropped).
    pub fn push_reward(&mut self, r: RewardRecord) {
        self.push(AuditRecord::Reward(r));
    }

    /// Serialize to one binary segment.
    pub fn to_bytes(&self) -> Vec<u8> {
        // header 28 B + ~104 B per decision record
        let mut out = Vec::with_capacity(28 + self.records.len() * 104);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // reserved
        out.extend_from_slice(&self.stream.to_le_bytes());
        out.extend_from_slice(&(self.records.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.dropped.to_le_bytes());
        for r in &self.records {
            match r {
                AuditRecord::Decision(d) => {
                    out.push(TAG_DECISION);
                    out.extend_from_slice(&d.id.to_le_bytes());
                    out.extend_from_slice(&d.key.to_le_bytes());
                    for s in &d.state {
                        out.extend_from_slice(&s.to_le_bytes());
                    }
                    out.extend_from_slice(&d.lane.to_le_bytes());
                    let flags =
                        u8::from(d.hit) | (u8::from(d.sampled) << 1) | (u8::from(d.explored) << 2);
                    out.push(flags);
                    out.push(d.features);
                    out.push(d.action);
                    for row in &d.q {
                        for &v in row {
                            out.extend_from_slice(&v.to_le_bytes());
                        }
                    }
                }
                AuditRecord::Reward(w) => {
                    out.push(TAG_REWARD);
                    out.extend_from_slice(&w.id.to_le_bytes());
                    out.push(u8::from(w.matched));
                    out.extend_from_slice(&w.reward.to_le_bytes());
                }
            }
        }
        out
    }
}

/// A parsed audit segment: one stream's records plus its drop count.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditSegment {
    /// Stream id the segment was recorded from.
    pub stream: u32,
    /// Records dropped at record time because the log was full.
    pub dropped: u64,
    /// The retained records, in arrival order.
    pub records: Vec<AuditRecord>,
}

/// A byte cursor over an audit blob.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.buf.len() {
            return Err(format!(
                "audit log truncated at byte {} (wanted {n} more of {})",
                self.pos,
                self.buf.len()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, String> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Parse a blob of concatenated audit segments.
///
/// # Errors
///
/// Returns a description when the magic, version, tag, or length is
/// malformed.
pub fn parse_audit(bytes: &[u8]) -> Result<Vec<AuditSegment>, String> {
    let mut c = Cursor { buf: bytes, pos: 0 };
    let mut segments = Vec::new();
    while c.pos < c.buf.len() {
        let magic = c.take(4)?;
        if magic != MAGIC {
            return Err(format!("bad audit magic at byte {}", c.pos - 4));
        }
        let version = c.u16()?;
        if version != VERSION {
            return Err(format!("unsupported audit version {version}"));
        }
        let _reserved = c.u16()?;
        let stream = c.u32()?;
        let count = c.u64()?;
        let dropped = c.u64()?;
        let mut records = Vec::with_capacity(count.min(1 << 24) as usize);
        for _ in 0..count {
            match c.u8()? {
                TAG_DECISION => {
                    let id = c.u64()?;
                    let key = c.u64()?;
                    let mut state = [0u64; AUDIT_FEATURES];
                    for s in &mut state {
                        *s = c.u64()?;
                    }
                    let lane = c.u32()?;
                    let flags = c.u8()?;
                    let features = c.u8()?;
                    let action = c.u8()?;
                    let mut q = [[0f32; AUDIT_ACTIONS]; AUDIT_FEATURES];
                    for row in &mut q {
                        for v in row.iter_mut() {
                            *v = c.f32()?;
                        }
                    }
                    records.push(AuditRecord::Decision(DecisionRecord {
                        id,
                        key,
                        state,
                        lane,
                        features,
                        action,
                        hit: flags & 1 != 0,
                        sampled: flags & 2 != 0,
                        explored: flags & 4 != 0,
                        q,
                    }));
                }
                TAG_REWARD => {
                    let id = c.u64()?;
                    let matched = c.u8()? != 0;
                    let reward = c.f64()?;
                    records.push(AuditRecord::Reward(RewardRecord {
                        id,
                        matched,
                        reward,
                    }));
                }
                t => return Err(format!("unknown audit record tag {t}")),
            }
        }
        segments.push(AuditSegment {
            stream,
            dropped,
            records,
        });
    }
    Ok(segments)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(id: u64) -> DecisionRecord {
        let mut q = [[0f32; AUDIT_ACTIONS]; AUDIT_FEATURES];
        q[0][2] = 1.5;
        q[1][6] = -0.25;
        DecisionRecord {
            id,
            key: 0xDEAD_BEEF ^ id,
            state: [id * 3, id * 7],
            lane: 2,
            features: 2,
            action: (id % 7) as u8,
            hit: id.is_multiple_of(2),
            sampled: true,
            explored: id.is_multiple_of(5),
            q,
        }
    }

    #[test]
    fn roundtrips_decisions_and_rewards() {
        let mut log = AuditLog::new(9, 64);
        for id in 0..10 {
            log.push_decision(decision(id));
            if id % 3 == 0 {
                log.push_reward(RewardRecord {
                    id,
                    matched: id % 2 == 0,
                    reward: -2.5 + id as f64,
                });
            }
        }
        let segs = parse_audit(&log.to_bytes()).expect("parse");
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].stream, 9);
        assert_eq!(segs[0].dropped, 0);
        assert_eq!(segs[0].records, log.records());
    }

    #[test]
    fn cap_drops_are_counted_not_stored() {
        let mut log = AuditLog::new(0, 3);
        for id in 0..8 {
            log.push_decision(decision(id));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 5);
        let segs = parse_audit(&log.to_bytes()).expect("parse");
        assert_eq!(segs[0].records.len(), 3);
        assert_eq!(segs[0].dropped, 5);
    }

    #[test]
    fn concatenated_segments_parse_in_order() {
        let mut a = AuditLog::new(0, 8);
        a.push_decision(decision(1));
        let mut b = AuditLog::new(1, 8);
        b.push_decision(decision(2));
        b.push_reward(RewardRecord {
            id: 2,
            matched: true,
            reward: 4.0,
        });
        let mut blob = a.to_bytes();
        blob.extend_from_slice(&b.to_bytes());
        let segs = parse_audit(&blob).expect("parse");
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].stream, 0);
        assert_eq!(segs[1].stream, 1);
        assert_eq!(segs[1].records.len(), 2);
    }

    #[test]
    fn truncated_blob_is_rejected() {
        let mut log = AuditLog::new(0, 8);
        log.push_decision(decision(1));
        let bytes = log.to_bytes();
        assert!(parse_audit(&bytes[..bytes.len() - 3]).is_err());
        assert!(parse_audit(&bytes[1..]).is_err(), "bad magic");
    }

    #[test]
    #[should_panic(expected = "nonzero capacity")]
    fn zero_capacity_rejected() {
        let _ = AuditLog::new(0, 0);
    }
}
