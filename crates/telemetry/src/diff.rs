//! Run-diff primitives: parse exported telemetry CSVs back and compare
//! two runs with statistically meaningful deltas.
//!
//! Epoch series are *samples* (one observation per epoch), so their
//! columns are compared with Welch's unequal-variance t-test — a column
//! only counts as changed when the epoch-to-epoch noise cannot explain
//! the mean shift. Attribution tables are exact totals (no variance),
//! so those are compared cell-by-cell against a relative threshold.
//!
//! Everything is hand-rolled on purpose: the workspace takes no
//! serialization or stats dependencies.

/// A parsed CSV: header names plus per-column numeric values.
/// Non-numeric cells parse as `None` and make the column non-numeric.
#[derive(Debug, Clone)]
pub struct CsvTable {
    headers: Vec<String>,
    /// Raw cells, row-major.
    cells: Vec<Vec<String>>,
}

impl CsvTable {
    /// Parse `text` as simple comma-separated values (no quoting — the
    /// exporters never emit quotes). Returns `None` on an empty input
    /// or a ragged row.
    pub fn parse(text: &str) -> Option<CsvTable> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let headers: Vec<String> = lines.next()?.split(',').map(|s| s.trim().into()).collect();
        let mut cells = Vec::new();
        for line in lines {
            let row: Vec<String> = line.split(',').map(|s| s.trim().into()).collect();
            if row.len() != headers.len() {
                return None;
            }
            cells.push(row);
        }
        Some(CsvTable { headers, cells })
    }

    /// Column headers, in file order.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Number of data rows.
    pub fn rows(&self) -> usize {
        self.cells.len()
    }

    /// Raw cell at (row, col).
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.cells.get(row).map(|r| r[col].as_str())
    }

    /// Column index by header name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.headers.iter().position(|h| h == name)
    }

    /// The column as `f64` observations; `None` if any cell fails to
    /// parse (a label column).
    pub fn numeric_column(&self, col: usize) -> Option<Vec<f64>> {
        self.cells
            .iter()
            .map(|r| r[col].parse::<f64>().ok())
            .collect()
    }
}

/// Mean of a sample (0 when empty).
fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Unbiased sample variance (0 for fewer than two observations).
fn variance(xs: &[f64], m: f64) -> f64 {
    if xs.len() < 2 {
        0.0
    } else {
        xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
    }
}

/// Welch's unequal-variance t statistic for two samples. Returns 0 when
/// either sample has fewer than two observations or both variances are
/// zero with equal means, and infinity for a mean shift with zero
/// variance (a deterministic change is maximally significant).
pub fn welch_t(a: &[f64], b: &[f64]) -> f64 {
    if a.len() < 2 || b.len() < 2 {
        return 0.0;
    }
    let (ma, mb) = (mean(a), mean(b));
    let se2 = variance(a, ma) / a.len() as f64 + variance(b, mb) / b.len() as f64;
    let d = mb - ma;
    if se2 == 0.0 {
        if d == 0.0 {
            0.0
        } else {
            f64::INFINITY * d.signum()
        }
    } else {
        d / se2.sqrt()
    }
}

/// One epoch-series column compared across two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDiff {
    /// Column header.
    pub name: String,
    /// Mean over run A's epochs.
    pub mean_a: f64,
    /// Mean over run B's epochs.
    pub mean_b: f64,
    /// Epochs in A / B.
    pub n_a: usize,
    /// Epochs in run B.
    pub n_b: usize,
    /// Welch t statistic of B vs A.
    pub t_stat: f64,
    /// True when `|t_stat|` clears the caller's threshold.
    pub significant: bool,
}

impl ColumnDiff {
    /// Relative change of B vs A (0 when A's mean is 0).
    pub fn pct_change(&self) -> f64 {
        if self.mean_a == 0.0 {
            0.0
        } else {
            100.0 * (self.mean_b - self.mean_a) / self.mean_a
        }
    }
}

/// Diff two exported epoch CSVs column-by-column with Welch's t-test.
/// Columns present in only one file are skipped (schema drift is
/// reported separately by the caller via [`CsvTable::headers`]).
/// Returns `None` when either input fails to parse.
pub fn diff_epoch_csv(a: &str, b: &str, t_threshold: f64) -> Option<Vec<ColumnDiff>> {
    let ta = CsvTable::parse(a)?;
    let tb = CsvTable::parse(b)?;
    let mut out = Vec::new();
    for (col_a, name) in ta.headers().iter().enumerate() {
        if name == "epoch" || name == "end_cycle" {
            continue;
        }
        let Some(col_b) = tb.column_index(name) else {
            continue;
        };
        let (Some(xs), Some(ys)) = (ta.numeric_column(col_a), tb.numeric_column(col_b)) else {
            continue;
        };
        let t = welch_t(&xs, &ys);
        out.push(ColumnDiff {
            name: name.clone(),
            mean_a: mean(&xs),
            mean_b: mean(&ys),
            n_a: xs.len(),
            n_b: ys.len(),
            t_stat: t,
            significant: t.abs() >= t_threshold,
        });
    }
    Some(out)
}

/// One attribution-table cell compared across two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct CellDiff {
    /// Row key (`core,kind`).
    pub key: String,
    /// Column header.
    pub column: String,
    /// Value in run A.
    pub a: f64,
    /// Value in run B.
    pub b: f64,
}

impl CellDiff {
    /// Relative change of B vs A (infinite when A is 0 and B is not).
    pub fn rel_change(&self) -> f64 {
        if self.a == 0.0 {
            if self.b == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.b - self.a).abs() / self.a.abs()
        }
    }
}

/// Diff two attribution CSVs cell-by-cell, keyed on the first two
/// columns (`core,kind`). Returns the cells whose relative change
/// exceeds `rel_threshold` (e.g. 0.05 = 5%). Returns `None` when
/// either input fails to parse.
pub fn diff_attrib_csv(a: &str, b: &str, rel_threshold: f64) -> Option<Vec<CellDiff>> {
    let ta = CsvTable::parse(a)?;
    let tb = CsvTable::parse(b)?;
    let key_of = |t: &CsvTable, row: usize| -> Option<String> {
        Some(format!("{},{}", t.cell(row, 0)?, t.cell(row, 1)?))
    };
    let mut out = Vec::new();
    for row_a in 0..ta.rows() {
        let Some(key) = key_of(&ta, row_a) else {
            continue;
        };
        let Some(row_b) = (0..tb.rows()).find(|&r| key_of(&tb, r).as_deref() == Some(&key)) else {
            continue;
        };
        for (col_a, name) in ta.headers().iter().enumerate().skip(2) {
            let Some(col_b) = tb.column_index(name) else {
                continue;
            };
            let (Some(va), Some(vb)) = (
                ta.cell(row_a, col_a).and_then(|c| c.parse::<f64>().ok()),
                tb.cell(row_b, col_b).and_then(|c| c.parse::<f64>().ok()),
            ) else {
                continue;
            };
            let d = CellDiff {
                key: key.clone(),
                column: name.clone(),
                a: va,
                b: vb,
            };
            if d.rel_change() > rel_threshold {
                out.push(d);
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rejects_ragged_rows() {
        assert!(CsvTable::parse("a,b\n1,2\n3").is_none());
        assert!(CsvTable::parse("").is_none());
        let t = CsvTable::parse("a,b\n1,2\n3,4\n").unwrap();
        assert_eq!(t.rows(), 2);
        assert_eq!(t.numeric_column(1).unwrap(), vec![2.0, 4.0]);
        assert!(
            CsvTable::parse("a,b\n1,x\n")
                .unwrap()
                .numeric_column(1)
                .is_none(),
            "label column is non-numeric"
        );
    }

    #[test]
    fn welch_t_detects_separated_means() {
        let a = [10.0, 11.0, 9.0, 10.5, 9.5];
        let b = [20.0, 21.0, 19.0, 20.5, 19.5];
        assert!(welch_t(&a, &b) > 10.0);
        assert!(welch_t(&b, &a) < -10.0);
        // identical noisy samples: no signal
        assert_eq!(welch_t(&a, &a), 0.0);
    }

    #[test]
    fn welch_t_zero_variance_shift_is_infinite() {
        let a = [5.0, 5.0, 5.0];
        let b = [6.0, 6.0, 6.0];
        assert_eq!(welch_t(&a, &b), f64::INFINITY);
        assert_eq!(welch_t(&a, &a), 0.0);
        assert_eq!(welch_t(&a[..1], &b), 0.0, "one observation: no test");
    }

    #[test]
    fn epoch_diff_flags_only_shifted_columns() {
        let a = "epoch,camat0,ipc\n0,10.0,1.0\n1,10.1,1.1\n2,9.9,0.9\n";
        let b = "epoch,camat0,ipc\n0,20.0,1.0\n1,20.1,1.1\n2,19.9,0.9\n";
        let diffs = diff_epoch_csv(a, b, 4.0).unwrap();
        assert_eq!(diffs.len(), 2, "epoch column skipped");
        let camat = diffs.iter().find(|d| d.name == "camat0").unwrap();
        assert!(camat.significant);
        assert!((camat.pct_change() - 100.0).abs() < 1.0);
        let ipc = diffs.iter().find(|d| d.name == "ipc").unwrap();
        assert!(!ipc.significant, "unchanged column stays quiet");
    }

    #[test]
    fn epoch_diff_skips_unmatched_columns() {
        let a = "epoch,old_col\n0,1\n1,2\n";
        let b = "epoch,new_col\n0,1\n1,2\n";
        assert!(diff_epoch_csv(a, b, 2.0).unwrap().is_empty());
    }

    #[test]
    fn attrib_diff_reports_changed_cells_by_key() {
        let a = "core,kind,requests,latency_cycles\n0,demand,100,5000\n0,prefetch,10,200\n";
        let b = "core,kind,requests,latency_cycles\n0,demand,100,9000\n0,prefetch,10,200\n";
        let diffs = diff_attrib_csv(a, b, 0.05).unwrap();
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].key, "0,demand");
        assert_eq!(diffs[0].column, "latency_cycles");
        assert!((diffs[0].rel_change() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn attrib_diff_zero_to_nonzero_is_infinite() {
        let a = "core,kind,x\n0,demand,0\n";
        let b = "core,kind,x\n0,demand,3\n";
        let diffs = diff_attrib_csv(a, b, 1000.0).unwrap();
        assert_eq!(diffs.len(), 1, "infinite change clears any threshold");
    }
}
