//! Epoch-resolved time series: one record per 100K-cycle control epoch.
//!
//! Cache counters are stored as *per-epoch deltas*, so summing a column
//! over the whole series reconciles exactly with the end-of-run
//! aggregate counters — the invariant the integration tests pin down.

/// Per-epoch probe of the management policy's internal state.
///
/// Baseline heuristics leave this at the default (all zeros); the CHROME
/// agent fills in the RL internals the paper's Fig. 8 / Table 7 discuss.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PolicyEpochProbe {
    /// Mean entries per EQ FIFO at the epoch boundary.
    pub eq_occupancy: f64,
    /// Cumulative EQ overflow evictions (entries rewarded at eviction).
    pub eq_overflows: u64,
    /// Exploration rate in effect this epoch.
    pub epsilon: f64,
    /// Mean |Q| over all table entries at the epoch boundary.
    pub mean_q_mag: f64,
}

/// One epoch's sample of the whole system.
///
/// The `noc_*` vectors are empty unless the simulator's mesh NoC is
/// enabled; the hand-written [`Debug`] impl omits them when empty so
/// NoC-off debug renderings (which golden-digest tests hash) are
/// byte-identical to the pre-NoC derived output.
#[derive(Clone, Default, PartialEq)]
pub struct EpochRecord {
    /// Epoch index (monotonic from the start of measurement).
    pub epoch: u64,
    /// Cycle at which the epoch closed.
    pub end_cycle: u64,
    /// Per-core C-AMAT at the LLC over this epoch.
    pub camat: Vec<f64>,
    /// Per-core pure (non-overlapped) AMAT at the LLC over this epoch.
    /// `amat - camat` is the per-access overlap saving MLP bought.
    pub amat: Vec<f64>,
    /// Per-core LLC-obstruction verdicts for this epoch.
    pub obstructed: Vec<bool>,
    /// Per-core memory-active cycles (union of access intervals) that
    /// fell inside this epoch.
    pub llc_active: Vec<u64>,
    /// Per-core LLC demand accesses recorded this epoch.
    pub llc_accesses: Vec<u64>,
    /// LLC demand accesses during this epoch (delta).
    pub demand_accesses: u64,
    /// LLC demand misses during this epoch (delta).
    pub demand_misses: u64,
    /// LLC bypasses during this epoch (delta).
    pub bypasses: u64,
    /// LLC evictions during this epoch (delta).
    pub evictions: u64,
    /// LLC writebacks during this epoch (delta).
    pub writebacks: u64,
    /// LLC MSHR entries in flight at the epoch boundary.
    pub mshr_occupancy: u32,
    /// LLC MSHR capacity (constant; kept per record for self-contained rows).
    pub mshr_capacity: u32,
    /// Per-core L1D MSHR entries in flight at the epoch boundary.
    pub l1_mshr_occupancy: Vec<u32>,
    /// Per-core L2 MSHR entries in flight at the epoch boundary.
    pub l2_mshr_occupancy: Vec<u32>,
    /// Mean DRAM bank-queue backlog (cycles) at the epoch boundary.
    pub dram_queue_avg: f64,
    /// Deepest DRAM bank-queue backlog (cycles) at the epoch boundary.
    pub dram_queue_max: u64,
    /// Accesses routed to each LLC slice this epoch (delta; empty when
    /// the NoC is off).
    pub noc_slice_accesses: Vec<u64>,
    /// Busy cycles accumulated on each mesh link this epoch (delta;
    /// empty when the NoC is off).
    pub noc_link_busy: Vec<u64>,
    /// Policy internals (EQ occupancy/overflow, ε, mean |Q|).
    pub policy: PolicyEpochProbe,
}

impl std::fmt::Debug for EpochRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Matches the derived impl field-for-field, except the noc
        // vectors are skipped when empty — keeping NoC-off renderings
        // (and the golden digests hashed from them) unchanged.
        let mut d = f.debug_struct("EpochRecord");
        d.field("epoch", &self.epoch)
            .field("end_cycle", &self.end_cycle)
            .field("camat", &self.camat)
            .field("amat", &self.amat)
            .field("obstructed", &self.obstructed)
            .field("llc_active", &self.llc_active)
            .field("llc_accesses", &self.llc_accesses)
            .field("demand_accesses", &self.demand_accesses)
            .field("demand_misses", &self.demand_misses)
            .field("bypasses", &self.bypasses)
            .field("evictions", &self.evictions)
            .field("writebacks", &self.writebacks)
            .field("mshr_occupancy", &self.mshr_occupancy)
            .field("mshr_capacity", &self.mshr_capacity)
            .field("l1_mshr_occupancy", &self.l1_mshr_occupancy)
            .field("l2_mshr_occupancy", &self.l2_mshr_occupancy)
            .field("dram_queue_avg", &self.dram_queue_avg)
            .field("dram_queue_max", &self.dram_queue_max);
        if !self.noc_slice_accesses.is_empty() || !self.noc_link_busy.is_empty() {
            d.field("noc_slice_accesses", &self.noc_slice_accesses)
                .field("noc_link_busy", &self.noc_link_busy);
        }
        d.field("policy", &self.policy).finish()
    }
}

impl EpochRecord {
    /// Epoch-local demand hits.
    pub fn demand_hits(&self) -> u64 {
        self.demand_accesses - self.demand_misses
    }

    /// Epoch-local hit rate (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.demand_accesses == 0 {
            0.0
        } else {
            self.demand_hits() as f64 / self.demand_accesses as f64
        }
    }

    /// Epoch-local bypass rate over demand misses (0 when no misses).
    pub fn bypass_rate(&self) -> f64 {
        if self.demand_misses == 0 {
            0.0
        } else {
            self.bypasses as f64 / self.demand_misses as f64
        }
    }
}

/// The recorded series for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpochSeries {
    records: Vec<EpochRecord>,
}

impl EpochSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one epoch record.
    pub fn push(&mut self, rec: EpochRecord) {
        self.records.push(rec);
    }

    /// All records, oldest first.
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// Number of recorded epochs.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Sum a counter column over the series (the reconciliation helper).
    pub fn summed(&self, col: impl Fn(&EpochRecord) -> u64) -> u64 {
        self.records.iter().map(col).sum()
    }

    /// Mean of a derived per-epoch value over the last `frac` of the
    /// series (e.g. converged-window EPHR, Fig. 8). Returns 0 when empty.
    pub fn tail_mean(&self, frac: f64, col: impl Fn(&EpochRecord) -> f64) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let keep = ((self.records.len() as f64 * frac.clamp(0.0, 1.0)).ceil() as usize)
            .clamp(1, self.records.len());
        let tail = &self.records[self.records.len() - keep..];
        tail.iter().map(&col).sum::<f64>() / tail.len() as f64
    }

    /// Drop all records (measurement-boundary reset).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(epoch: u64, accesses: u64, misses: u64) -> EpochRecord {
        EpochRecord {
            epoch,
            demand_accesses: accesses,
            demand_misses: misses,
            ..Default::default()
        }
    }

    #[test]
    fn summed_reconciles_columns() {
        let mut s = EpochSeries::new();
        s.push(rec(0, 100, 40));
        s.push(rec(1, 50, 10));
        assert_eq!(s.summed(|r| r.demand_accesses), 150);
        assert_eq!(s.summed(|r| r.demand_misses), 50);
    }

    #[test]
    fn rates_handle_idle_epochs() {
        let r = rec(0, 0, 0);
        assert_eq!(r.hit_rate(), 0.0);
        assert_eq!(r.bypass_rate(), 0.0);
        let r = rec(1, 10, 4);
        assert!((r.hit_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn tail_mean_uses_only_the_tail() {
        let mut s = EpochSeries::new();
        for e in 0..10 {
            // hit rate ramps 0.0, 0.1, ... 0.9
            s.push(rec(e, 10, 10 - e));
        }
        let late = s.tail_mean(0.2, |r| r.hit_rate());
        assert!((late - 0.85).abs() < 1e-12, "mean of last two = {late}");
        assert_eq!(EpochSeries::new().tail_mean(0.5, |r| r.hit_rate()), 0.0);
    }
}
