//! Bounded ring-buffer trace of structured policy-decision events.
//!
//! Full runs see hundreds of millions of accesses; the ring keeps the
//! newest `capacity` events and a sampling knob (`sample_every`) thins
//! the stream before it is stored, so memory stays bounded no matter how
//! long the run is.

/// What happened, with the decision-specific payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A replacement victim was selected.
    VictimChosen {
        /// LLC set index.
        set: u32,
        /// Chosen way.
        way: u32,
        /// Line address being evicted.
        line: u64,
    },
    /// A fill was bypassed around the LLC.
    BypassTaken {
        /// Line address that was not inserted.
        line: u64,
        /// PC of the triggering access.
        pc: u64,
    },
    /// A delayed reward was assigned to a recorded action.
    RewardApplied {
        /// Reward value.
        reward: f64,
        /// True if assigned by address match, false at EQ eviction.
        matched: bool,
    },
    /// A SARSA update changed the Q-table.
    QUpdate {
        /// TD step applied (α · TD-error).
        delta: f64,
        /// Action whose value moved.
        action: u8,
    },
    /// A baseline policy's predictor classified an access.
    PredictorVerdict {
        /// PC signature consulted.
        signature: u64,
        /// True when predicted cache-friendly.
        friendly: bool,
    },
    /// An epoch boundary passed.
    EpochBoundary {
        /// Epoch index.
        epoch: u64,
    },
    /// A serving-cache agent decision: the per-decision state the
    /// decision-forensics work keys on (feature slice values, the chosen
    /// action, and its Q-estimate at decision time).
    ServeDecision {
        /// First state feature (flow signature).
        f1: u64,
        /// Second state feature (key neighborhood).
        f2: u64,
        /// Chosen action (paper encoding, 0..=6).
        action: u8,
        /// Q-estimate of the chosen action at decision time.
        q: f64,
    },
}

impl EventKind {
    /// Short stable name, used by the exporters.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::VictimChosen { .. } => "victim_chosen",
            EventKind::BypassTaken { .. } => "bypass_taken",
            EventKind::RewardApplied { .. } => "reward_applied",
            EventKind::QUpdate { .. } => "q_update",
            EventKind::PredictorVerdict { .. } => "predictor_verdict",
            EventKind::EpochBoundary { .. } => "epoch_boundary",
            EventKind::ServeDecision { .. } => "serve_decision",
        }
    }
}

/// One traced event with its cycle stamp and issuing core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Simulator cycle at which the decision happened.
    pub cycle: u64,
    /// Core the access belonged to.
    pub core: u32,
    /// The decision payload.
    pub kind: EventKind,
}

/// Bounded ring buffer with pre-storage sampling.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Next write position.
    next: usize,
    /// Events stored (monotonic; `stored - len()` have been overwritten).
    stored: u64,
    /// Events offered, including ones the sampler skipped.
    offered: u64,
    sample_every: u64,
}

impl EventRing {
    /// A ring holding at most `capacity` events, keeping every
    /// `sample_every`-th offered event (1 = keep all).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `sample_every` is zero.
    pub fn new(capacity: usize, sample_every: u64) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        assert!(sample_every > 0, "sample_every must be positive");
        EventRing {
            buf: Vec::with_capacity(capacity.min(4096)),
            capacity,
            next: 0,
            stored: 0,
            offered: 0,
            sample_every,
        }
    }

    /// Offer an event; returns true if it was stored.
    #[inline]
    pub fn offer(&mut self, ev: TraceEvent) -> bool {
        let take = self.offered.is_multiple_of(self.sample_every);
        self.offered += 1;
        if !take {
            return false;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
        }
        self.next = (self.next + 1) % self.capacity;
        self.stored += 1;
        true
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events offered so far (stored or not).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Stored events that wraparound has since overwritten.
    pub fn overwritten(&self) -> u64 {
        self.stored - self.buf.len() as u64
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        let (tail, head) = if self.buf.len() < self.capacity {
            (&self.buf[..], &[][..])
        } else {
            let (head, tail) = self.buf.split_at(self.next);
            (tail, head)
        };
        tail.iter().chain(head.iter())
    }

    /// Drop all retained events and reset the sampling phase.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
        self.stored = 0;
        self.offered = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            core: 0,
            kind: EventKind::EpochBoundary { epoch: cycle },
        }
    }

    #[test]
    fn fills_then_wraps_keeping_newest() {
        let mut r = EventRing::new(4, 1);
        for c in 0..10 {
            r.offer(ev(c));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.overwritten(), 6);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, [6, 7, 8, 9], "oldest-first, newest retained");
    }

    #[test]
    fn partial_fill_iterates_in_order() {
        let mut r = EventRing::new(8, 1);
        for c in 0..3 {
            r.offer(ev(c));
        }
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, [0, 1, 2]);
        assert_eq!(r.overwritten(), 0);
    }

    #[test]
    fn sampling_keeps_every_nth() {
        let mut r = EventRing::new(100, 3);
        let stored = (0..30).filter(|&c| r.offer(ev(c))).count();
        assert_eq!(stored, 10);
        assert_eq!(r.offered(), 30);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, [0, 3, 6, 9, 12, 15, 18, 21, 24, 27]);
    }

    #[test]
    fn wrap_exactly_at_capacity_boundary() {
        let mut r = EventRing::new(3, 1);
        for c in 0..6 {
            r.offer(ev(c));
        }
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, [3, 4, 5]);
    }

    #[test]
    fn clear_resets_sampling_phase() {
        let mut r = EventRing::new(4, 2);
        r.offer(ev(0)); // kept (phase 0)
        r.clear();
        assert!(r.offer(ev(1)), "first post-clear offer is kept again");
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = EventRing::new(0, 1);
    }
}
