//! Exporters: CSV and JSON-lines for the epoch series, Chrome
//! `trace_event` JSON for the event ring, and a metrics snapshot.
//!
//! Everything is hand-serialised — the schemas are small and fixed, and
//! owning the writer keeps the workspace free of registry dependencies.
//! Output is deterministic: column order is fixed, map iteration is
//! sorted, floats print with a fixed precision.

use std::fmt::Write as _;

use crate::attrib::{AttribProfiler, RequestSpan, ServiceLevel, Stage, StageAccum};
use crate::epoch::{EpochRecord, EpochSeries};
use crate::events::{EventKind, EventRing};
use crate::metrics::MetricsRegistry;

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        // JSON has no Infinity/NaN; CSV readers choke on them too
        "0.000000".to_string()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// CSV header for a series with `cores` cores. Per-core vector columns
/// come first (one block per field), scalar columns after.
pub fn epoch_csv_header(cores: usize) -> String {
    let mut h = String::from("epoch,end_cycle");
    for name in [
        "camat",
        "amat",
        "obstructed",
        "llc_active",
        "llc_accesses",
        "l1_mshr",
        "l2_mshr",
    ] {
        for i in 0..cores {
            let _ = write!(h, ",{name}{i}");
        }
    }
    h.push_str(
        ",demand_accesses,demand_misses,bypasses,evictions,writebacks,\
         mshr_occupancy,mshr_capacity,dram_queue_avg,dram_queue_max,\
         eq_occupancy,eq_overflows,epsilon,mean_q_mag",
    );
    h
}

fn epoch_csv_row(r: &EpochRecord) -> String {
    let mut row = format!("{},{}", r.epoch, r.end_cycle);
    for c in &r.camat {
        let _ = write!(row, ",{}", fmt_f64(*c));
    }
    for a in &r.amat {
        let _ = write!(row, ",{}", fmt_f64(*a));
    }
    for o in &r.obstructed {
        let _ = write!(row, ",{}", *o as u8);
    }
    for v in &r.llc_active {
        let _ = write!(row, ",{v}");
    }
    for v in &r.llc_accesses {
        let _ = write!(row, ",{v}");
    }
    for v in &r.l1_mshr_occupancy {
        let _ = write!(row, ",{v}");
    }
    for v in &r.l2_mshr_occupancy {
        let _ = write!(row, ",{v}");
    }
    let _ = write!(
        row,
        ",{},{},{},{},{},{},{},{},{},{},{},{},{}",
        r.demand_accesses,
        r.demand_misses,
        r.bypasses,
        r.evictions,
        r.writebacks,
        r.mshr_occupancy,
        r.mshr_capacity,
        fmt_f64(r.dram_queue_avg),
        r.dram_queue_max,
        fmt_f64(r.policy.eq_occupancy),
        r.policy.eq_overflows,
        fmt_f64(r.policy.epsilon),
        fmt_f64(r.policy.mean_q_mag),
    );
    for v in &r.noc_slice_accesses {
        let _ = write!(row, ",{v}");
    }
    for v in &r.noc_link_busy {
        let _ = write!(row, ",{v}");
    }
    row
}

/// Render the epoch series as CSV (header + one row per epoch). When
/// the run had the mesh NoC enabled (the first record carries per-slice
/// and per-link vectors), matching `noc_slice{i}` / `noc_link{i}`
/// columns are appended after the scalar block; NoC-off output is
/// unchanged.
pub fn epoch_csv(series: &EpochSeries) -> String {
    let first = series.records().first();
    let cores = first.map_or(0, |r| r.camat.len());
    let mut out = epoch_csv_header(cores);
    if let Some(r) = first {
        for i in 0..r.noc_slice_accesses.len() {
            let _ = write!(out, ",noc_slice{i}");
        }
        for i in 0..r.noc_link_busy.len() {
            let _ = write!(out, ",noc_link{i}");
        }
    }
    out.push('\n');
    for r in series.records() {
        out.push_str(&epoch_csv_row(r));
        out.push('\n');
    }
    out
}

fn join_u64<T: std::fmt::Display>(v: &[T]) -> String {
    v.iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn epoch_json(r: &EpochRecord) -> String {
    let camat: Vec<String> = r.camat.iter().map(|c| fmt_f64(*c)).collect();
    let amat: Vec<String> = r.amat.iter().map(|a| fmt_f64(*a)).collect();
    let obstructed: Vec<String> = r.obstructed.iter().map(|o| o.to_string()).collect();
    // NoC keys only appear on NoC-enabled runs; JSONL is self-describing
    // so NoC-off output stays byte-identical to the pre-NoC schema.
    let noc = if r.noc_slice_accesses.is_empty() && r.noc_link_busy.is_empty() {
        String::new()
    } else {
        format!(
            ",\"noc_slice_accesses\":[{}],\"noc_link_busy\":[{}]",
            join_u64(&r.noc_slice_accesses),
            join_u64(&r.noc_link_busy),
        )
    };
    format!(
        "{{\"epoch\":{},\"end_cycle\":{},\"camat\":[{}],\"amat\":[{}],\
         \"obstructed\":[{}],\"llc_active\":[{}],\"llc_accesses\":[{}],\
         \"l1_mshr_occupancy\":[{}],\"l2_mshr_occupancy\":[{}],\
         \"demand_accesses\":{},\"demand_misses\":{},\"bypasses\":{},\
         \"evictions\":{},\"writebacks\":{},\"mshr_occupancy\":{},\
         \"mshr_capacity\":{},\"dram_queue_avg\":{},\"dram_queue_max\":{},\
         \"eq_occupancy\":{},\"eq_overflows\":{},\"epsilon\":{},\"mean_q_mag\":{}{}}}",
        r.epoch,
        r.end_cycle,
        camat.join(","),
        amat.join(","),
        obstructed.join(","),
        join_u64(&r.llc_active),
        join_u64(&r.llc_accesses),
        join_u64(&r.l1_mshr_occupancy),
        join_u64(&r.l2_mshr_occupancy),
        r.demand_accesses,
        r.demand_misses,
        r.bypasses,
        r.evictions,
        r.writebacks,
        r.mshr_occupancy,
        r.mshr_capacity,
        fmt_f64(r.dram_queue_avg),
        r.dram_queue_max,
        fmt_f64(r.policy.eq_occupancy),
        r.policy.eq_overflows,
        fmt_f64(r.policy.epsilon),
        fmt_f64(r.policy.mean_q_mag),
        noc,
    )
}

/// Render the epoch series as JSON-lines (one object per epoch).
pub fn epoch_jsonl(series: &EpochSeries) -> String {
    let mut out = String::new();
    for r in series.records() {
        out.push_str(&epoch_json(r));
        out.push('\n');
    }
    out
}

fn event_args(kind: &EventKind) -> String {
    match kind {
        EventKind::VictimChosen { set, way, line } => {
            format!("{{\"set\":{set},\"way\":{way},\"line\":{line}}}")
        }
        EventKind::BypassTaken { line, pc } => {
            format!("{{\"line\":{line},\"pc\":{pc}}}")
        }
        EventKind::RewardApplied { reward, matched } => {
            format!("{{\"reward\":{},\"matched\":{matched}}}", fmt_f64(*reward))
        }
        EventKind::QUpdate { delta, action } => {
            format!("{{\"delta\":{},\"action\":{action}}}", fmt_f64(*delta))
        }
        EventKind::PredictorVerdict {
            signature,
            friendly,
        } => {
            format!("{{\"signature\":{signature},\"friendly\":{friendly}}}")
        }
        EventKind::EpochBoundary { epoch } => format!("{{\"epoch\":{epoch}}}"),
        EventKind::ServeDecision { f1, f2, action, q } => {
            format!(
                "{{\"f1\":{f1},\"f2\":{f2},\"action\":{action},\"q\":{}}}",
                fmt_f64(*q)
            )
        }
    }
}

/// Render an event ring as JSON-lines: one object per retained event
/// (oldest first) with its cycle stamp, lane (core/tenant), kind name,
/// and kind-specific args. This is the decision-forensics feed: piping
/// a CHROME agent's ring through here yields an audit log of every
/// sampled decision with its state, Q-estimate, and realized rewards.
pub fn events_jsonl(ring: &EventRing) -> String {
    let mut out = String::new();
    for ev in ring.iter() {
        let _ = writeln!(
            out,
            "{{\"cycle\":{},\"lane\":{},\"kind\":\"{}\",\"args\":{}}}",
            ev.cycle,
            ev.core,
            json_escape(ev.kind.name()),
            event_args(&ev.kind),
        );
    }
    out
}

/// Render the event ring (plus epoch boundaries from the series and any
/// sampled request spans) as Chrome `trace_event` JSON — openable in
/// `chrome://tracing` and Perfetto. Cycles map to microsecond timestamps
/// 1:1; each core is a thread, epochs span thread 0 as duration events.
/// Each request span becomes one outer duration event tiled exactly by
/// its per-stage slices, so the stages nest under the request.
pub fn chrome_trace_json(ring: &EventRing, series: &EpochSeries, spans: &[RequestSpan]) -> String {
    let mut parts: Vec<String> = Vec::with_capacity(ring.len() + series.len() + spans.len());
    let mut prev_end = 0u64;
    for r in series.records() {
        parts.push(format!(
            "{{\"name\":\"epoch {}\",\"cat\":\"epoch\",\"ph\":\"X\",\
             \"ts\":{},\"dur\":{},\"pid\":0,\"tid\":0,\"args\":{}}}",
            r.epoch,
            prev_end,
            r.end_cycle.saturating_sub(prev_end),
            event_args(&EventKind::EpochBoundary { epoch: r.epoch }),
        ));
        prev_end = r.end_cycle;
    }
    for ev in ring.iter() {
        parts.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"policy\",\"ph\":\"i\",\"s\":\"t\",\
             \"ts\":{},\"pid\":0,\"tid\":{},\"args\":{}}}",
            json_escape(ev.kind.name()),
            ev.cycle,
            ev.core + 1,
            event_args(&ev.kind),
        ));
    }
    for s in spans {
        let kind = if s.is_prefetch { "prefetch" } else { "demand" };
        parts.push(format!(
            "{{\"name\":\"{kind}\",\"cat\":\"request\",\"ph\":\"X\",\
             \"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\
             \"args\":{{\"line\":{},\"pc\":{},\"level\":\"{}\",\"merged\":{}}}}}",
            s.start,
            s.latency(),
            s.core + 1,
            s.line,
            s.pc,
            s.level.name(),
            s.merged,
        ));
        let mut t = s.start;
        for stage in Stage::ALL {
            let dur = s.stages[stage as usize];
            if dur == 0 {
                continue;
            }
            parts.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"stage\",\"ph\":\"X\",\
                 \"ts\":{t},\"dur\":{dur},\"pid\":0,\"tid\":{}}}",
                stage.name(),
                s.core + 1,
            ));
            t += dur;
        }
    }
    format!(
        "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[{}]}}",
        parts.join(",")
    )
}

/// CSV header for the attribution table.
pub fn attrib_csv_header() -> String {
    let mut h = String::from("core,kind,requests,merged,latency_cycles");
    for lvl in ServiceLevel::ALL {
        let _ = write!(h, ",served_{}", lvl.name().to_ascii_lowercase());
    }
    for stage in Stage::ALL {
        let _ = write!(h, ",{}", stage.name());
    }
    h
}

fn attrib_csv_row(core: &str, kind: &str, a: &StageAccum) -> String {
    let mut row = format!(
        "{core},{kind},{},{},{}",
        a.requests, a.merged, a.latency_cycles
    );
    for v in &a.by_level {
        let _ = write!(row, ",{v}");
    }
    for v in &a.stages {
        let _ = write!(row, ",{v}");
    }
    row
}

/// Render the attribution profiler as CSV: one row per (core, kind)
/// plus an `all,total` roll-up row.
pub fn attrib_csv(p: &AttribProfiler) -> String {
    let mut out = attrib_csv_header();
    out.push('\n');
    for (core, a) in p.demand().iter().enumerate() {
        out.push_str(&attrib_csv_row(&core.to_string(), "demand", a));
        out.push('\n');
    }
    for (core, a) in p.prefetch().iter().enumerate() {
        out.push_str(&attrib_csv_row(&core.to_string(), "prefetch", a));
        out.push('\n');
    }
    out.push_str(&attrib_csv_row("all", "total", &p.combined()));
    out.push('\n');
    out
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// Render the attribution profiler as a human-readable
/// "where-cycles-go" report.
pub fn attrib_text(p: &AttribProfiler) -> String {
    let mut out = String::new();
    let all = p.combined();
    let _ = writeln!(out, "latency attribution — where cycles go");
    let _ = writeln!(
        out,
        "  requests: {} ({} merged), total latency: {} cycles, \
         mean: {} cycles, mismatches: {}",
        all.requests,
        all.merged,
        all.latency_cycles,
        fmt_f64(if all.requests == 0 {
            0.0
        } else {
            all.latency_cycles as f64 / all.requests as f64
        }),
        p.mismatches(),
    );
    let _ = writeln!(out, "\n  {:<14} {:>16} {:>8}", "stage", "cycles", "share");
    for stage in Stage::ALL {
        let cycles = all.stages[stage as usize];
        let _ = writeln!(
            out,
            "  {:<14} {:>16} {:>7.2}%",
            stage.name(),
            cycles,
            pct(cycles, all.latency_cycles),
        );
    }
    let _ = writeln!(
        out,
        "\n  {:<14} {:>16} {:>8}",
        "served by", "requests", "share"
    );
    for lvl in ServiceLevel::ALL {
        let n = all.by_level[lvl as usize];
        let _ = writeln!(
            out,
            "  {:<14} {:>16} {:>7.2}%",
            lvl.name(),
            n,
            pct(n, all.requests),
        );
    }
    let _ = writeln!(
        out,
        "\n  {:<6} {:>10} {:>14} {:>10} {:>10}",
        "core", "demand", "lat cycles", "mean", "prefetch"
    );
    for (core, a) in p.demand().iter().enumerate() {
        let pf = p.prefetch().get(core).map_or(0, |x| x.requests);
        let _ = writeln!(
            out,
            "  {core:<6} {:>10} {:>14} {:>10} {pf:>10}",
            a.requests,
            a.latency_cycles,
            fmt_f64(if a.requests == 0 {
                0.0
            } else {
                a.latency_cycles as f64 / a.requests as f64
            }),
        );
    }
    let h = p.latency_histogram();
    if h.count() > 0 {
        let q = |q: f64| {
            h.quantile_bound(q)
                .map_or("overflow".to_string(), |b| format!("<={b}"))
        };
        let _ = writeln!(
            out,
            "\n  demand latency quantile bounds: p50 {} p90 {} p99 {}",
            q(0.5),
            q(0.9),
            q(0.99),
        );
    }
    out
}

/// Render the metrics registry as one JSON object (counters, gauges,
/// histograms with bucket bounds and counts).
pub fn metrics_json(metrics: &MetricsRegistry) -> String {
    let counters: Vec<String> = metrics
        .counters()
        .map(|(k, v)| format!("\"{}\":{v}", json_escape(k)))
        .collect();
    let gauges: Vec<String> = metrics
        .gauges()
        .map(|(k, v)| format!("\"{}\":{}", json_escape(k), fmt_f64(v)))
        .collect();
    let hists: Vec<String> = metrics
        .histograms()
        .map(|(k, h)| {
            let bounds: Vec<String> = h.bounds().iter().map(|b| b.to_string()).collect();
            let counts: Vec<String> = h.counts().iter().map(|c| c.to_string()).collect();
            format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"bounds\":[{}],\"counts\":[{}]}}",
                json_escape(k),
                h.count(),
                h.sum(),
                bounds.join(","),
                counts.join(",")
            )
        })
        .collect();
    format!(
        "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
        counters.join(","),
        gauges.join(","),
        hists.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::PolicyEpochProbe;
    use crate::events::TraceEvent;

    fn sample_series() -> EpochSeries {
        let mut s = EpochSeries::new();
        s.push(EpochRecord {
            epoch: 0,
            end_cycle: 100_000,
            camat: vec![1.5, 2.0],
            amat: vec![3.5, 4.0],
            obstructed: vec![false, true],
            llc_active: vec![150, 200],
            llc_accesses: vec![100, 100],
            l1_mshr_occupancy: vec![1, 2],
            l2_mshr_occupancy: vec![3, 4],
            demand_accesses: 100,
            demand_misses: 30,
            bypasses: 5,
            evictions: 25,
            writebacks: 8,
            mshr_occupancy: 3,
            mshr_capacity: 64,
            dram_queue_avg: 12.25,
            dram_queue_max: 40,
            noc_slice_accesses: Vec::new(),
            noc_link_busy: Vec::new(),
            policy: PolicyEpochProbe {
                eq_occupancy: 4.5,
                eq_overflows: 2,
                epsilon: 0.001,
                mean_q_mag: 1.25,
            },
        });
        s
    }

    fn noc_series() -> EpochSeries {
        let mut r = sample_series().records()[0].clone();
        r.noc_slice_accesses = vec![60, 40];
        r.noc_link_busy = vec![5, 0, 7, 1];
        let mut s = EpochSeries::new();
        s.push(r);
        s
    }

    #[test]
    fn csv_has_header_and_matching_columns() {
        let csv = epoch_csv(&sample_series());
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        let row = lines.next().unwrap();
        assert!(header.starts_with("epoch,end_cycle,camat0,camat1,amat0,amat1,obstructed0"));
        assert!(header.contains(",llc_active0,llc_active1,llc_accesses0"));
        assert!(header.contains(",l1_mshr0,l1_mshr1,l2_mshr0,l2_mshr1,"));
        assert_eq!(header.split(',').count(), row.split(',').count());
        assert!(row.contains(",0.001000,"));
        assert!(lines.next().is_none());
    }

    #[test]
    fn noc_columns_appear_only_when_present() {
        // NoC off: no noc columns or keys anywhere
        let csv = epoch_csv(&sample_series());
        assert!(!csv.contains("noc_"));
        let jsonl = epoch_jsonl(&sample_series());
        assert!(!jsonl.contains("noc_"));
        // NoC on: per-slice and per-link columns, still rectangular
        let csv = epoch_csv(&noc_series());
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        let row = lines.next().unwrap();
        assert!(header.ends_with(",noc_slice0,noc_slice1,noc_link0,noc_link1,noc_link2,noc_link3"));
        assert_eq!(header.split(',').count(), row.split(',').count());
        assert!(row.ends_with(",60,40,5,0,7,1"));
        let jsonl = epoch_jsonl(&noc_series());
        assert!(jsonl.contains("\"noc_slice_accesses\":[60,40]"));
        assert!(jsonl.contains("\"noc_link_busy\":[5,0,7,1]"));
    }

    #[test]
    fn epoch_debug_hides_empty_noc_fields() {
        let plain = format!("{:?}", sample_series().records()[0]);
        assert!(!plain.contains("noc_"), "NoC-off Debug must match pre-NoC");
        let noc = format!("{:?}", noc_series().records()[0]);
        assert!(noc.contains("noc_slice_accesses: [60, 40]"));
        assert!(noc.contains("noc_link_busy: [5, 0, 7, 1]"));
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let jsonl = epoch_jsonl(&sample_series());
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        assert!(lines[0].contains("\"camat\":[1.500000,2.000000]"));
        assert!(lines[0].contains("\"amat\":[3.500000,4.000000]"));
        assert!(lines[0].contains("\"obstructed\":[false,true]"));
        assert!(lines[0].contains("\"llc_active\":[150,200]"));
        assert!(lines[0].contains("\"l1_mshr_occupancy\":[1,2]"));
    }

    fn sample_span() -> RequestSpan {
        use crate::attrib::SpanBuilder;
        let mut b = SpanBuilder::start(1, 0x400, 7, false, 1000);
        b.mark(Stage::L1Lookup, 1004);
        b.mark(Stage::L2Lookup, 1014);
        b.mark_llc_entry(1014);
        b.finish(ServiceLevel::Llc, Stage::LlcLookup, 1054, false)
    }

    #[test]
    fn chrome_trace_shape() {
        let mut ring = EventRing::new(8, 1);
        ring.offer(TraceEvent {
            cycle: 123,
            core: 1,
            kind: EventKind::BypassTaken { line: 7, pc: 9 },
        });
        let json = chrome_trace_json(&ring, &sample_series(), &[sample_span()]);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\"")); // the epoch span
        assert!(json.contains("\"name\":\"bypass_taken\""));
        assert!(json.contains("\"ts\":123"));
        assert!(json.contains("\"name\":\"demand\""));
        assert!(json.contains("\"cat\":\"stage\""));
        assert!(json.contains("\"name\":\"llc_lookup\""));
        assert!(json.ends_with("]}"));
        // braces balance (cheap well-formedness check)
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn span_stage_slices_tile_the_request() {
        let s = sample_span();
        let json = chrome_trace_json(&EventRing::new(8, 1), &EpochSeries::new(), &[s]);
        // outer request event covers [1000, 1054); stage slices are
        // contiguous: 1000+4, 1004+10, 1014+40
        assert!(json.contains("\"ts\":1000,\"dur\":54"));
        assert!(json.contains("\"ts\":1000,\"dur\":4"));
        assert!(json.contains("\"ts\":1004,\"dur\":10"));
        assert!(json.contains("\"ts\":1014,\"dur\":40"));
    }

    #[test]
    fn attrib_csv_rows_align_with_header() {
        let mut p = AttribProfiler::new(8, 1);
        p.record(sample_span());
        let csv = attrib_csv(&p);
        let lines: Vec<&str> = csv.lines().collect();
        // cores 0..=1 × (demand, prefetch) + total
        assert_eq!(lines.len(), 1 + 2 * 2 + 1);
        let width = lines[0].split(',').count();
        for l in &lines {
            assert_eq!(l.split(',').count(), width, "ragged row: {l}");
        }
        assert!(lines[0].contains(",served_l1,served_l2,served_llc,served_dram,"));
        assert!(lines[0].ends_with("fill_wait"));
        assert!(lines.last().unwrap().starts_with("all,total,1,"));
    }

    #[test]
    fn attrib_text_reports_stages_and_levels() {
        let mut p = AttribProfiler::new(8, 1);
        p.record(sample_span());
        let txt = attrib_text(&p);
        assert!(txt.contains("where cycles go"));
        assert!(txt.contains("llc_lookup"));
        assert!(txt.contains("mismatches: 0"));
        assert!(txt.contains("LLC"));
    }

    #[test]
    fn metrics_json_sorted_and_balanced() {
        let mut m = MetricsRegistry::new();
        m.counter_add("b", 2);
        m.counter_add("a", 1);
        m.gauge_set("g", 0.5);
        m.observe("h", 3);
        let json = metrics_json(&m);
        assert!(json.find("\"a\":1").unwrap() < json.find("\"b\":2").unwrap());
        assert!(json.contains("\"histograms\":{\"h\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn non_finite_floats_are_sanitised() {
        assert_eq!(fmt_f64(f64::NAN), "0.000000");
        assert_eq!(fmt_f64(f64::INFINITY), "0.000000");
    }
}
