//! Exporters: CSV and JSON-lines for the epoch series, Chrome
//! `trace_event` JSON for the event ring, and a metrics snapshot.
//!
//! Everything is hand-serialised — the schemas are small and fixed, and
//! owning the writer keeps the workspace free of registry dependencies.
//! Output is deterministic: column order is fixed, map iteration is
//! sorted, floats print with a fixed precision.

use std::fmt::Write as _;

use crate::epoch::{EpochRecord, EpochSeries};
use crate::events::{EventKind, EventRing};
use crate::metrics::MetricsRegistry;

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        // JSON has no Infinity/NaN; CSV readers choke on them too
        "0.000000".to_string()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// CSV header for a series with `cores` cores.
pub fn epoch_csv_header(cores: usize) -> String {
    let mut h = String::from("epoch,end_cycle");
    for i in 0..cores {
        let _ = write!(h, ",camat{i}");
    }
    for i in 0..cores {
        let _ = write!(h, ",obstructed{i}");
    }
    h.push_str(
        ",demand_accesses,demand_misses,bypasses,evictions,writebacks,\
         mshr_occupancy,mshr_capacity,dram_queue_avg,dram_queue_max,\
         eq_occupancy,eq_overflows,epsilon,mean_q_mag",
    );
    h
}

fn epoch_csv_row(r: &EpochRecord) -> String {
    let mut row = format!("{},{}", r.epoch, r.end_cycle);
    for c in &r.camat {
        let _ = write!(row, ",{}", fmt_f64(*c));
    }
    for o in &r.obstructed {
        let _ = write!(row, ",{}", *o as u8);
    }
    let _ = write!(
        row,
        ",{},{},{},{},{},{},{},{},{},{},{},{},{}",
        r.demand_accesses,
        r.demand_misses,
        r.bypasses,
        r.evictions,
        r.writebacks,
        r.mshr_occupancy,
        r.mshr_capacity,
        fmt_f64(r.dram_queue_avg),
        r.dram_queue_max,
        fmt_f64(r.policy.eq_occupancy),
        r.policy.eq_overflows,
        fmt_f64(r.policy.epsilon),
        fmt_f64(r.policy.mean_q_mag),
    );
    row
}

/// Render the epoch series as CSV (header + one row per epoch).
pub fn epoch_csv(series: &EpochSeries) -> String {
    let cores = series.records().first().map_or(0, |r| r.camat.len());
    let mut out = epoch_csv_header(cores);
    out.push('\n');
    for r in series.records() {
        out.push_str(&epoch_csv_row(r));
        out.push('\n');
    }
    out
}

fn epoch_json(r: &EpochRecord) -> String {
    let camat: Vec<String> = r.camat.iter().map(|c| fmt_f64(*c)).collect();
    let obstructed: Vec<String> = r.obstructed.iter().map(|o| o.to_string()).collect();
    format!(
        "{{\"epoch\":{},\"end_cycle\":{},\"camat\":[{}],\"obstructed\":[{}],\
         \"demand_accesses\":{},\"demand_misses\":{},\"bypasses\":{},\
         \"evictions\":{},\"writebacks\":{},\"mshr_occupancy\":{},\
         \"mshr_capacity\":{},\"dram_queue_avg\":{},\"dram_queue_max\":{},\
         \"eq_occupancy\":{},\"eq_overflows\":{},\"epsilon\":{},\"mean_q_mag\":{}}}",
        r.epoch,
        r.end_cycle,
        camat.join(","),
        obstructed.join(","),
        r.demand_accesses,
        r.demand_misses,
        r.bypasses,
        r.evictions,
        r.writebacks,
        r.mshr_occupancy,
        r.mshr_capacity,
        fmt_f64(r.dram_queue_avg),
        r.dram_queue_max,
        fmt_f64(r.policy.eq_occupancy),
        r.policy.eq_overflows,
        fmt_f64(r.policy.epsilon),
        fmt_f64(r.policy.mean_q_mag),
    )
}

/// Render the epoch series as JSON-lines (one object per epoch).
pub fn epoch_jsonl(series: &EpochSeries) -> String {
    let mut out = String::new();
    for r in series.records() {
        out.push_str(&epoch_json(r));
        out.push('\n');
    }
    out
}

fn event_args(kind: &EventKind) -> String {
    match kind {
        EventKind::VictimChosen { set, way, line } => {
            format!("{{\"set\":{set},\"way\":{way},\"line\":{line}}}")
        }
        EventKind::BypassTaken { line, pc } => {
            format!("{{\"line\":{line},\"pc\":{pc}}}")
        }
        EventKind::RewardApplied { reward, matched } => {
            format!("{{\"reward\":{},\"matched\":{matched}}}", fmt_f64(*reward))
        }
        EventKind::QUpdate { delta, action } => {
            format!("{{\"delta\":{},\"action\":{action}}}", fmt_f64(*delta))
        }
        EventKind::PredictorVerdict {
            signature,
            friendly,
        } => {
            format!("{{\"signature\":{signature},\"friendly\":{friendly}}}")
        }
        EventKind::EpochBoundary { epoch } => format!("{{\"epoch\":{epoch}}}"),
    }
}

/// Render the event ring (plus epoch boundaries from the series) as
/// Chrome `trace_event` JSON — openable in `chrome://tracing` and
/// Perfetto. Cycles map to microsecond timestamps 1:1; each core is a
/// thread, epochs span thread 0 as duration events.
pub fn chrome_trace_json(ring: &EventRing, series: &EpochSeries) -> String {
    let mut parts: Vec<String> = Vec::with_capacity(ring.len() + series.len());
    let mut prev_end = 0u64;
    for r in series.records() {
        parts.push(format!(
            "{{\"name\":\"epoch {}\",\"cat\":\"epoch\",\"ph\":\"X\",\
             \"ts\":{},\"dur\":{},\"pid\":0,\"tid\":0,\"args\":{}}}",
            r.epoch,
            prev_end,
            r.end_cycle.saturating_sub(prev_end),
            event_args(&EventKind::EpochBoundary { epoch: r.epoch }),
        ));
        prev_end = r.end_cycle;
    }
    for ev in ring.iter() {
        parts.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"policy\",\"ph\":\"i\",\"s\":\"t\",\
             \"ts\":{},\"pid\":0,\"tid\":{},\"args\":{}}}",
            json_escape(ev.kind.name()),
            ev.cycle,
            ev.core + 1,
            event_args(&ev.kind),
        ));
    }
    format!(
        "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[{}]}}",
        parts.join(",")
    )
}

/// Render the metrics registry as one JSON object (counters, gauges,
/// histograms with bucket bounds and counts).
pub fn metrics_json(metrics: &MetricsRegistry) -> String {
    let counters: Vec<String> = metrics
        .counters()
        .map(|(k, v)| format!("\"{}\":{v}", json_escape(k)))
        .collect();
    let gauges: Vec<String> = metrics
        .gauges()
        .map(|(k, v)| format!("\"{}\":{}", json_escape(k), fmt_f64(v)))
        .collect();
    let hists: Vec<String> = metrics
        .histograms()
        .map(|(k, h)| {
            let bounds: Vec<String> = h.bounds().iter().map(|b| b.to_string()).collect();
            let counts: Vec<String> = h.counts().iter().map(|c| c.to_string()).collect();
            format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"bounds\":[{}],\"counts\":[{}]}}",
                json_escape(k),
                h.count(),
                h.sum(),
                bounds.join(","),
                counts.join(",")
            )
        })
        .collect();
    format!(
        "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
        counters.join(","),
        gauges.join(","),
        hists.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::PolicyEpochProbe;
    use crate::events::TraceEvent;

    fn sample_series() -> EpochSeries {
        let mut s = EpochSeries::new();
        s.push(EpochRecord {
            epoch: 0,
            end_cycle: 100_000,
            camat: vec![1.5, 2.0],
            obstructed: vec![false, true],
            demand_accesses: 100,
            demand_misses: 30,
            bypasses: 5,
            evictions: 25,
            writebacks: 8,
            mshr_occupancy: 3,
            mshr_capacity: 64,
            dram_queue_avg: 12.25,
            dram_queue_max: 40,
            policy: PolicyEpochProbe {
                eq_occupancy: 4.5,
                eq_overflows: 2,
                epsilon: 0.001,
                mean_q_mag: 1.25,
            },
        });
        s
    }

    #[test]
    fn csv_has_header_and_matching_columns() {
        let csv = epoch_csv(&sample_series());
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        let row = lines.next().unwrap();
        assert!(header.starts_with("epoch,end_cycle,camat0,camat1,obstructed0"));
        assert_eq!(header.split(',').count(), row.split(',').count());
        assert!(row.contains(",0.001000,"));
        assert!(lines.next().is_none());
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let jsonl = epoch_jsonl(&sample_series());
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        assert!(lines[0].contains("\"camat\":[1.500000,2.000000]"));
        assert!(lines[0].contains("\"obstructed\":[false,true]"));
    }

    #[test]
    fn chrome_trace_shape() {
        let mut ring = EventRing::new(8, 1);
        ring.offer(TraceEvent {
            cycle: 123,
            core: 1,
            kind: EventKind::BypassTaken { line: 7, pc: 9 },
        });
        let json = chrome_trace_json(&ring, &sample_series());
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\"")); // the epoch span
        assert!(json.contains("\"name\":\"bypass_taken\""));
        assert!(json.contains("\"ts\":123"));
        assert!(json.ends_with("]}"));
        // braces balance (cheap well-formedness check)
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn metrics_json_sorted_and_balanced() {
        let mut m = MetricsRegistry::new();
        m.counter_add("b", 2);
        m.counter_add("a", 1);
        m.gauge_set("g", 0.5);
        m.observe("h", 3);
        let json = metrics_json(&m);
        assert!(json.find("\"a\":1").unwrap() < json.find("\"b\":2").unwrap());
        assert!(json.contains("\"histograms\":{\"h\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn non_finite_floats_are_sanitised() {
        assert_eq!(fmt_f64(f64::NAN), "0.000000");
        assert_eq!(fmt_f64(f64::INFINITY), "0.000000");
    }
}
