//! # chrome-telemetry — observability for the CHROME reproduction
//!
//! CHROME's control loop is epoch-driven: obstruction detection,
//! delayed rewards and Q-updates all happen against a 100K-cycle epoch
//! clock. End-of-run aggregates hide all of that. This crate makes the
//! dynamics observable:
//!
//! * [`MetricsRegistry`] — named counters, gauges, and fixed-bucket
//!   histograms with deterministic (sorted) export order,
//! * [`EpochSeries`] — one [`EpochRecord`] per epoch: per-core C-AMAT,
//!   LLC hit/miss/bypass deltas, MSHR and DRAM queue occupancy, EQ
//!   state, ε, and mean |Q|,
//! * [`EventRing`] — a bounded ring buffer of structured policy
//!   decisions ([`TraceEvent`]) with a sampling knob,
//! * [`export`] — CSV / JSON-lines / Chrome `trace_event` writers.
//!
//! Everything funnels through a [`TelemetrySink`]: a cheap clonable
//! handle that is either recording or a no-op. Disabled sinks cost one
//! branch per hook; the simulator additionally compiles its hooks away
//! when built without its `telemetry` feature.
//!
//! ```
//! use chrome_telemetry::{EventKind, TelemetryConfig, TelemetrySink};
//!
//! let sink = TelemetrySink::recording(TelemetryConfig::default());
//! sink.emit(42, 0, EventKind::BypassTaken { line: 0x1000, pc: 0x400 });
//! assert_eq!(sink.with(|t| t.events.len()), Some(1));
//! assert_eq!(TelemetrySink::noop().with(|t| t.events.len()), None);
//! ```

pub mod attrib;
pub mod audit;
pub mod diff;
pub mod epoch;
pub mod events;
pub mod export;
pub mod metrics;

use std::cell::RefCell;
use std::io;
use std::path::{Path, PathBuf};
use std::rc::Rc;

pub use attrib::{AttribProfiler, RequestSpan, ServiceLevel, SpanBuilder, Stage, StageAccum};
pub use audit::{
    parse_audit, AuditLog, AuditRecord, AuditSegment, DecisionRecord, RewardRecord, AUDIT_ACTIONS,
    AUDIT_FEATURES,
};
pub use epoch::{EpochRecord, EpochSeries, PolicyEpochProbe};
pub use events::{EventKind, EventRing, TraceEvent};
pub use metrics::{Histogram, MetricsRegistry};

/// Sizing knobs for a recording sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Maximum events retained in the ring buffer.
    pub event_capacity: usize,
    /// Keep every n-th offered event (1 = keep all).
    pub sample_every: u64,
    /// Record per-request latency-attribution spans. Off by default:
    /// span stamping touches every access, so it is opt-in even on a
    /// recording sink.
    pub profile: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        // 64K events ≈ 2.5 MB: generous for debugging, bounded for soaks.
        TelemetryConfig {
            event_capacity: 65_536,
            sample_every: 1,
            profile: false,
        }
    }
}

/// The recorded state behind a live sink.
#[derive(Debug)]
pub struct Telemetry {
    /// Named counters / gauges / histograms.
    pub metrics: MetricsRegistry,
    /// Structured decision events.
    pub events: EventRing,
    /// Per-epoch system samples.
    pub epochs: EpochSeries,
    /// Per-request latency attribution (populated only when the sink
    /// was configured with `profile: true`).
    pub attrib: AttribProfiler,
    /// Sampling manifest (JSON) when the run was a representative-
    /// interval sampled replay; `None` for full runs. Exported as
    /// `<prefix>_sampling.json` so downstream tooling (`tldiff`) can
    /// tell sampled and full artifacts apart.
    pub sampling: Option<String>,
}

impl Telemetry {
    fn new(cfg: TelemetryConfig) -> Self {
        Telemetry {
            metrics: MetricsRegistry::new(),
            events: EventRing::new(cfg.event_capacity, cfg.sample_every),
            epochs: EpochSeries::new(),
            attrib: AttribProfiler::new(cfg.event_capacity, cfg.sample_every),
            sampling: None,
        }
    }
}

/// A clonable handle that either records into a shared [`Telemetry`] or
/// does nothing. Every instrumentation hook in the stack takes one of
/// these; the no-op variant reduces each hook to a single branch.
///
/// The simulator is single-threaded, so the shared state is
/// `Rc<RefCell<…>>` — cloning is a pointer copy.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySink {
    inner: Option<Rc<RefCell<Telemetry>>>,
    /// Mirrored from `TelemetryConfig::profile` so hot paths can gate
    /// span creation on a plain bool without touching the `RefCell`.
    profile: bool,
}

impl TelemetrySink {
    /// A sink that drops everything.
    pub fn noop() -> Self {
        TelemetrySink {
            inner: None,
            profile: false,
        }
    }

    /// A live sink recording into fresh storage.
    pub fn recording(cfg: TelemetryConfig) -> Self {
        TelemetrySink {
            inner: Some(Rc::new(RefCell::new(Telemetry::new(cfg)))),
            profile: cfg.profile,
        }
    }

    /// True when this sink records.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// True when this sink wants per-request latency spans.
    #[inline]
    pub fn profiling(&self) -> bool {
        self.profile && self.inner.is_some()
    }

    /// Fold a finished request span into the attribution profiler.
    #[inline]
    pub fn record_span(&self, span: RequestSpan) {
        if let Some(t) = &self.inner {
            t.borrow_mut().attrib.record(span);
        }
    }

    /// Run `f` against the recorded state (`None` for a no-op sink).
    pub fn with<T>(&self, f: impl FnOnce(&Telemetry) -> T) -> Option<T> {
        self.inner.as_ref().map(|t| f(&t.borrow()))
    }

    /// Offer a decision event.
    #[inline]
    pub fn emit(&self, cycle: u64, core: u32, kind: EventKind) {
        if let Some(t) = &self.inner {
            t.borrow_mut()
                .events
                .offer(TraceEvent { cycle, core, kind });
        }
    }

    /// Bump a counter.
    #[inline]
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(t) = &self.inner {
            t.borrow_mut().metrics.counter_add(name, delta);
        }
    }

    /// Set a gauge.
    #[inline]
    pub fn gauge_set(&self, name: &str, v: f64) {
        if let Some(t) = &self.inner {
            t.borrow_mut().metrics.gauge_set(name, v);
        }
    }

    /// Record a histogram observation.
    #[inline]
    pub fn observe(&self, name: &str, v: u64) {
        if let Some(t) = &self.inner {
            t.borrow_mut().metrics.observe(name, v);
        }
    }

    /// Append an epoch record.
    pub fn push_epoch(&self, rec: EpochRecord) {
        if let Some(t) = &self.inner {
            t.borrow_mut().epochs.push(rec);
        }
    }

    /// Drop everything recorded so far (measurement-boundary reset so
    /// warmup does not pollute the exported series). The sampling
    /// manifest survives: it describes the run's shape, not its
    /// measurements.
    pub fn clear(&self) {
        if let Some(t) = &self.inner {
            let mut t = t.borrow_mut();
            t.metrics.clear();
            t.events.clear();
            t.epochs.clear();
            t.attrib.clear();
        }
    }

    /// Attach the sampling manifest (JSON) for a sampled replay; full
    /// runs never call this, so their artifact sets carry no
    /// `_sampling.json`.
    pub fn set_sampling(&self, manifest: String) {
        if let Some(t) = &self.inner {
            t.borrow_mut().sampling = Some(manifest);
        }
    }

    /// Write all artifacts into `dir` as `<prefix>_epochs.csv`,
    /// `<prefix>_epochs.jsonl`, `<prefix>_trace.json`, and
    /// `<prefix>_metrics.json` — plus `<prefix>_attrib.csv` and
    /// `<prefix>_attrib.txt` when profiling, and `<prefix>_sampling.json`
    /// when a sampling manifest was attached. Creates `dir` if missing;
    /// a no-op sink writes nothing and returns an empty list.
    pub fn export(&self, dir: &Path, prefix: &str) -> io::Result<Vec<PathBuf>> {
        let Some(t) = &self.inner else {
            return Ok(Vec::new());
        };
        std::fs::create_dir_all(dir)?;
        let t = t.borrow();
        let mut files = vec![
            (format!("{prefix}_epochs.csv"), export::epoch_csv(&t.epochs)),
            (
                format!("{prefix}_epochs.jsonl"),
                export::epoch_jsonl(&t.epochs),
            ),
            (
                format!("{prefix}_trace.json"),
                export::chrome_trace_json(&t.events, &t.epochs, t.attrib.spans()),
            ),
            (
                format!("{prefix}_metrics.json"),
                export::metrics_json(&t.metrics),
            ),
        ];
        if self.profile {
            files.push((
                format!("{prefix}_attrib.csv"),
                export::attrib_csv(&t.attrib),
            ));
            files.push((
                format!("{prefix}_attrib.txt"),
                export::attrib_text(&t.attrib),
            ));
        }
        if let Some(manifest) = &t.sampling {
            files.push((format!("{prefix}_sampling.json"), manifest.clone()));
        }
        let mut written = Vec::with_capacity(files.len());
        for (name, contents) in files {
            let path = dir.join(name);
            std::fs::write(&path, contents)?;
            written.push(path);
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_records_nothing() {
        let s = TelemetrySink::noop();
        assert!(!s.is_enabled());
        s.emit(1, 0, EventKind::EpochBoundary { epoch: 0 });
        s.counter_add("x", 1);
        s.push_epoch(EpochRecord::default());
        assert_eq!(s.with(|t| t.events.len()), None);
    }

    #[test]
    fn clones_share_storage() {
        let a = TelemetrySink::recording(TelemetryConfig::default());
        let b = a.clone();
        b.counter_add("hits", 3);
        a.counter_add("hits", 2);
        assert_eq!(a.with(|t| t.metrics.counter("hits")), Some(5));
    }

    #[test]
    fn clear_resets_all_streams() {
        let s = TelemetrySink::recording(TelemetryConfig::default());
        s.emit(1, 0, EventKind::EpochBoundary { epoch: 0 });
        s.push_epoch(EpochRecord::default());
        s.counter_add("c", 1);
        s.clear();
        assert_eq!(s.with(|t| t.events.len()), Some(0));
        assert_eq!(s.with(|t| t.epochs.len()), Some(0));
        assert_eq!(s.with(|t| t.metrics.counter("c")), Some(0));
    }

    #[test]
    fn export_writes_all_artifacts() {
        let dir = std::env::temp_dir().join("chrome-telemetry-test-export");
        let _ = std::fs::remove_dir_all(&dir);
        let s = TelemetrySink::recording(TelemetryConfig::default());
        s.push_epoch(EpochRecord {
            epoch: 0,
            end_cycle: 5,
            ..Default::default()
        });
        let files = s.export(&dir, "run0").unwrap();
        assert_eq!(files.len(), 4);
        for f in &files {
            assert!(f.exists(), "{f:?} missing");
        }
        let csv = std::fs::read_to_string(dir.join("run0_epochs.csv")).unwrap();
        assert_eq!(csv.lines().count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn profiling_sink_records_spans_and_exports_attrib() {
        let dir = std::env::temp_dir().join("chrome-telemetry-test-profile");
        let _ = std::fs::remove_dir_all(&dir);
        let s = TelemetrySink::recording(TelemetryConfig {
            profile: true,
            ..Default::default()
        });
        assert!(s.profiling());
        assert!(!TelemetrySink::noop().profiling());
        let b = SpanBuilder::start(0, 0x400, 7, false, 100);
        s.record_span(b.finish(ServiceLevel::L1, Stage::L1Lookup, 104, false));
        assert_eq!(s.with(|t| t.attrib.total_requests()), Some(1));
        let files = s.export(&dir, "run0").unwrap();
        assert_eq!(files.len(), 6, "attrib csv+txt join the artifact set");
        assert!(dir.join("run0_attrib.csv").exists());
        assert!(dir.join("run0_attrib.txt").exists());
        s.clear();
        assert_eq!(s.with(|t| t.attrib.total_requests()), Some(0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sampling_manifest_survives_clear_and_exports() {
        let dir = std::env::temp_dir().join("chrome-telemetry-test-sampling");
        let _ = std::fs::remove_dir_all(&dir);
        let s = TelemetrySink::recording(TelemetryConfig::default());
        s.set_sampling("{\"spec\":\"k=2,ramp=100\"}".into());
        s.clear(); // measurement-boundary reset must not drop the manifest
        let files = s.export(&dir, "run0").unwrap();
        assert_eq!(files.len(), 5);
        let json = std::fs::read_to_string(dir.join("run0_sampling.json")).unwrap();
        assert!(json.contains("k=2,ramp=100"));
        // full runs export no sampling artifact
        let plain = TelemetrySink::recording(TelemetryConfig::default());
        let files = plain.export(&dir, "run1").unwrap();
        assert_eq!(files.len(), 4);
        assert!(!dir.join("run1_sampling.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn noop_export_writes_nothing() {
        let dir = std::env::temp_dir().join("chrome-telemetry-test-noop");
        let _ = std::fs::remove_dir_all(&dir);
        let files = TelemetrySink::noop().export(&dir, "x").unwrap();
        assert!(files.is_empty());
        assert!(!dir.exists(), "no-op export must not create the dir");
    }
}
