//! A small metrics registry: named counters, gauges, and fixed-bucket
//! histograms.
//!
//! `BTreeMap` keys keep every exported artifact byte-stable across runs
//! with the same seed — iteration order is the sort order of the names,
//! never the hash order.

use std::collections::BTreeMap;

/// A fixed-bucket histogram over `u64` observations.
///
/// Bucket `i` counts observations `v <= bounds[i]` (first matching
/// bound); one implicit overflow bucket catches everything above the
/// last bound. Fixed buckets keep `observe` allocation-free and O(log b).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Histogram {
    /// A histogram with the given strictly increasing bucket upper
    /// bounds (inclusive), plus an implicit overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
        }
    }

    /// Power-of-two bounds `1, 2, 4, …, 2^(n-1)` — a good default for
    /// latency- and occupancy-shaped data.
    pub fn pow2(n: u32) -> Self {
        let bounds: Vec<u64> = (0..n).map(|i| 1u64 << i).collect();
        Histogram::new(&bounds)
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observation, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket upper bounds (the overflow bucket is implicit).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Upper bound of the bucket holding the `q`-quantile observation
    /// (`q` in `[0, 1]`); `None` when empty or when the quantile falls in
    /// the unbounded overflow bucket.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut acc = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return self.bounds.get(i).copied();
            }
        }
        None
    }
}

/// Named counters, gauges, and histograms, all in deterministic
/// (sorted-name) order.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name`, creating it at zero first.
    #[inline]
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Read a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name` to `v`.
    #[inline]
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        if let Some(g) = self.gauges.get_mut(name) {
            *g = v;
        } else {
            self.gauges.insert(name.to_string(), v);
        }
    }

    /// Read a gauge (`None` when never set).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record into histogram `name`, auto-registering a 24-bucket
    /// power-of-two histogram on first use.
    #[inline]
    pub fn observe(&mut self, name: &str, v: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(v);
        } else {
            let mut h = Histogram::pow2(24);
            h.observe(v);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Register histogram `name` with explicit bounds (replacing any
    /// auto-registered one).
    pub fn register_histogram(&mut self, name: &str, bounds: &[u64]) {
        self.histograms
            .insert(name.to_string(), Histogram::new(bounds));
    }

    /// Read a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in sorted-name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in sorted-name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in sorted-name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Drop all recorded values (registered histogram shapes are kept).
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        for h in self.histograms.values_mut() {
            let bounds = h.bounds.clone();
            *h = Histogram::new(&bounds);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_inclusive_upper_bound() {
        let mut h = Histogram::new(&[10, 100, 1000]);
        h.observe(0);
        h.observe(10); // boundary: still the first bucket
        h.observe(11);
        h.observe(100);
        h.observe(1000);
        h.observe(1001); // overflow
        assert_eq!(h.counts(), &[2, 2, 1, 1]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 2122);
    }

    #[test]
    fn pow2_histogram_covers_wide_range() {
        let mut h = Histogram::pow2(10);
        h.observe(1);
        h.observe(512);
        h.observe(100_000); // beyond 2^9 -> overflow
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(*h.counts().last().unwrap(), 1);
    }

    #[test]
    fn quantile_bound_walks_buckets() {
        let mut h = Histogram::new(&[1, 2, 4, 8]);
        for v in [1, 1, 2, 2, 4, 8] {
            h.observe(v);
        }
        assert_eq!(h.quantile_bound(0.0), Some(1));
        assert_eq!(h.quantile_bound(0.5), Some(2));
        assert_eq!(h.quantile_bound(1.0), Some(8));
        assert_eq!(Histogram::new(&[1]).quantile_bound(0.5), None);
    }

    #[test]
    fn quantile_in_overflow_is_none() {
        let mut h = Histogram::new(&[1]);
        h.observe(100);
        assert_eq!(h.quantile_bound(0.9), None);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        let _ = Histogram::new(&[5, 5]);
    }

    #[test]
    fn registry_roundtrip_and_order() {
        let mut m = MetricsRegistry::new();
        m.counter_add("z.late", 1);
        m.counter_add("a.early", 2);
        m.counter_add("z.late", 3);
        m.gauge_set("eps", 0.1);
        m.gauge_set("eps", 0.2);
        m.observe("lat", 7);
        assert_eq!(m.counter("z.late"), 4);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge("eps"), Some(0.2));
        assert_eq!(m.histogram("lat").unwrap().count(), 1);
        let names: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, ["a.early", "z.late"], "sorted, not insertion order");
    }

    #[test]
    fn clear_keeps_registered_shapes() {
        let mut m = MetricsRegistry::new();
        m.register_histogram("q", &[3, 6]);
        m.observe("q", 5);
        m.counter_add("c", 9);
        m.clear();
        assert_eq!(m.counter("c"), 0);
        let h = m.histogram("q").unwrap();
        assert_eq!(h.count(), 0);
        assert_eq!(h.bounds(), &[3, 6]);
    }
}
