//! Schema round-trip tests for `export::events_jsonl`: every
//! [`EventKind`] variant must export one well-formed JSON line whose
//! kind name and args survive a parse by the workspace JSON reader.

use chrome_exec::json::{parse, JsonValue};
use chrome_telemetry::{export, EventKind, EventRing, TraceEvent};

fn ring_with(kinds: Vec<EventKind>) -> EventRing {
    let mut ring = EventRing::new(64, 1);
    for (i, kind) in kinds.into_iter().enumerate() {
        ring.offer(TraceEvent {
            cycle: 100 + i as u64,
            core: i as u32,
            kind,
        });
    }
    ring
}

/// Every variant, with values that exercise sign, zero, and large-u64
/// edges of the encoding.
fn all_variants() -> Vec<EventKind> {
    vec![
        EventKind::VictimChosen {
            set: 2048,
            way: 11,
            line: u64::MAX >> 6,
        },
        EventKind::BypassTaken {
            line: 0xDEAD_BEEF,
            pc: 0x0040_1000,
        },
        EventKind::RewardApplied {
            reward: -20.5,
            matched: false,
        },
        EventKind::QUpdate {
            delta: 0.03125,
            action: 6,
        },
        EventKind::PredictorVerdict {
            signature: 0xFEED_F00D,
            friendly: true,
        },
        EventKind::EpochBoundary { epoch: 0 },
        EventKind::ServeDecision {
            f1: 77,
            f2: 0,
            action: 3,
            q: -1.5,
        },
    ]
}

fn parsed_lines(ring: &EventRing) -> Vec<JsonValue> {
    export::events_jsonl(ring)
        .lines()
        .map(|l| parse(l).unwrap_or_else(|| panic!("line is not valid JSON: {l}")))
        .collect()
}

#[test]
fn every_event_kind_round_trips_through_jsonl() {
    let kinds = all_variants();
    let ring = ring_with(kinds.clone());
    let lines = parsed_lines(&ring);
    assert_eq!(lines.len(), kinds.len(), "one line per variant");
    for (i, (line, kind)) in lines.iter().zip(&kinds).enumerate() {
        assert_eq!(
            line.get("kind").and_then(JsonValue::as_str),
            Some(kind.name()),
            "line {i}"
        );
        assert_eq!(
            line.get("cycle").and_then(JsonValue::as_u64),
            Some(100 + i as u64)
        );
        assert_eq!(line.get("lane").and_then(JsonValue::as_u64), Some(i as u64));
        let args = line.get("args").expect("args object");
        match *kind {
            EventKind::VictimChosen { set, way, line } => {
                assert_eq!(
                    args.get("set").and_then(JsonValue::as_u64),
                    Some(u64::from(set))
                );
                assert_eq!(
                    args.get("way").and_then(JsonValue::as_u64),
                    Some(u64::from(way))
                );
                assert_eq!(args.get("line").and_then(JsonValue::as_u64), Some(line));
            }
            EventKind::BypassTaken { line, pc } => {
                assert_eq!(args.get("line").and_then(JsonValue::as_u64), Some(line));
                assert_eq!(args.get("pc").and_then(JsonValue::as_u64), Some(pc));
            }
            EventKind::RewardApplied { reward, matched } => {
                assert_eq!(args.get("reward").and_then(JsonValue::as_f64), Some(reward));
                assert_eq!(
                    args.get("matched").and_then(JsonValue::as_bool),
                    Some(matched)
                );
            }
            EventKind::QUpdate { delta, action } => {
                assert_eq!(args.get("delta").and_then(JsonValue::as_f64), Some(delta));
                assert_eq!(
                    args.get("action").and_then(JsonValue::as_u64),
                    Some(u64::from(action))
                );
            }
            EventKind::PredictorVerdict {
                signature,
                friendly,
            } => {
                assert_eq!(
                    args.get("signature").and_then(JsonValue::as_u64),
                    Some(signature)
                );
                assert_eq!(
                    args.get("friendly").and_then(JsonValue::as_bool),
                    Some(friendly)
                );
            }
            EventKind::EpochBoundary { epoch } => {
                assert_eq!(args.get("epoch").and_then(JsonValue::as_u64), Some(epoch));
            }
            EventKind::ServeDecision { f1, f2, action, q } => {
                assert_eq!(args.get("f1").and_then(JsonValue::as_u64), Some(f1));
                assert_eq!(args.get("f2").and_then(JsonValue::as_u64), Some(f2));
                assert_eq!(
                    args.get("action").and_then(JsonValue::as_u64),
                    Some(u64::from(action))
                );
                assert_eq!(args.get("q").and_then(JsonValue::as_f64), Some(q));
            }
        }
    }
}

#[test]
fn jsonl_preserves_ring_order_oldest_first() {
    let ring = ring_with(all_variants());
    let lines = parsed_lines(&ring);
    let cycles: Vec<u64> = lines
        .iter()
        .map(|l| l.get("cycle").and_then(JsonValue::as_u64).unwrap())
        .collect();
    let mut sorted = cycles.clone();
    sorted.sort_unstable();
    assert_eq!(cycles, sorted, "export order is offer order");
}

#[test]
fn jsonl_of_wrapped_ring_keeps_only_the_tail() {
    let mut ring = EventRing::new(4, 1);
    for i in 0..10u64 {
        ring.offer(TraceEvent {
            cycle: i,
            core: 0,
            kind: EventKind::EpochBoundary { epoch: i },
        });
    }
    let lines = parsed_lines(&ring);
    assert_eq!(lines.len(), 4);
    assert_eq!(lines[0].get("cycle").and_then(JsonValue::as_u64), Some(6));
    assert_eq!(lines[3].get("cycle").and_then(JsonValue::as_u64), Some(9));
}

#[test]
fn special_floats_stay_parseable() {
    // JSON has no NaN/Infinity literals; the exporter must emit
    // something the reader accepts for any f64 the policy produces.
    let ring = ring_with(vec![
        EventKind::RewardApplied {
            reward: f64::NAN,
            matched: true,
        },
        EventKind::QUpdate {
            delta: f64::INFINITY,
            action: 0,
        },
        EventKind::QUpdate {
            delta: f64::NEG_INFINITY,
            action: 1,
        },
    ]);
    for line in export::events_jsonl(&ring).lines() {
        assert!(
            parse(line).is_some(),
            "non-finite payload broke the line: {line}"
        );
    }
}
