//! Exporter well-formedness: write every artifact through the public
//! sink API, then parse each one back (with a minimal in-test JSON
//! parser — the crate itself is dependency-free) and assert the schema
//! and row/event counts round-trip.

use std::path::PathBuf;

use chrome_telemetry::attrib::STAGE_COUNT;
use chrome_telemetry::diff::CsvTable;
use chrome_telemetry::{
    EpochRecord, EventKind, ServiceLevel, SpanBuilder, Stage, TelemetryConfig, TelemetrySink,
};

// ---------------------------------------------------------------- JSON

/// A minimal JSON value — just enough to validate our own exporters.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            s: s.as_bytes(),
            i: 0,
        }
    }

    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.i < self.s.len() && self.s[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.i))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.s.get(self.i).copied()
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("unexpected end")? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self
            .s
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()
            .and_then(|t| t.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        while let Some(&c) = self.s.get(self.i) {
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.s.get(self.i).ok_or("truncated escape")?;
                    self.i += 1;
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'"' => '"',
                        b'\\' => '\\',
                        other => other as char,
                    });
                }
                _ => out.push(c as char),
            }
        }
        Err("unterminated string".to_string())
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("bad array at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.eat(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("bad object at byte {}", self.i)),
            }
        }
    }
}

fn parse_json(text: &str) -> Json {
    let mut p = Parser::new(text);
    let v = p.value().expect("valid JSON");
    p.ws();
    assert_eq!(p.i, p.s.len(), "trailing garbage after JSON value");
    v
}

// ------------------------------------------------------------- fixture

const CORES: usize = 2;
const EPOCHS: usize = 3;
const SPANS: usize = 4;

fn record(epoch: u64) -> EpochRecord {
    EpochRecord {
        epoch,
        end_cycle: (epoch + 1) * 10_000,
        camat: vec![3.5; CORES],
        amat: vec![4.25; CORES],
        obstructed: vec![false; CORES],
        llc_active: vec![100 * (epoch + 1); CORES],
        llc_accesses: vec![40; CORES],
        l1_mshr_occupancy: vec![1; CORES],
        l2_mshr_occupancy: vec![2; CORES],
        demand_accesses: 500,
        demand_misses: 50,
        ..Default::default()
    }
}

fn span(core: u32, start: u64) -> chrome_telemetry::RequestSpan {
    let mut b = SpanBuilder::start(core, 0x400, 7, false, start);
    b.mark(Stage::L1Lookup, start + 4);
    b.mark(Stage::L1MshrWait, start + 10);
    b.mark(Stage::L2Lookup, start + 20);
    b.finish(ServiceLevel::L2, Stage::FillWait, start + 32, false)
}

/// Export the full artifact set through the sink and return the files.
fn export_all() -> (PathBuf, Vec<PathBuf>) {
    let sink = TelemetrySink::recording(TelemetryConfig {
        profile: true,
        ..TelemetryConfig::default()
    });
    for e in 0..EPOCHS as u64 {
        sink.push_epoch(record(e));
        sink.emit(e * 10_000, 0, EventKind::EpochBoundary { epoch: e });
    }
    for i in 0..SPANS as u64 {
        let s = span((i % CORES as u64) as u32, i * 100);
        sink.record_span(s);
    }
    let dir = std::env::temp_dir().join(format!("chrome_tl_roundtrip_{}", std::process::id()));
    let files = sink.export(&dir, "rt").expect("export succeeds");
    (dir, files)
}

fn read(dir: &std::path::Path, name: &str) -> String {
    std::fs::read_to_string(dir.join(name)).unwrap_or_else(|e| panic!("reading {name}: {e}"))
}

// --------------------------------------------------------------- tests

#[test]
fn exported_artifacts_roundtrip() {
    let (dir, files) = export_all();
    assert_eq!(
        files.len(),
        6,
        "epochs csv+jsonl, trace, metrics, attrib csv+txt"
    );

    // -- epoch CSV: header width matches every row, row count matches
    let csv = read(&dir, "rt_epochs.csv");
    let table = CsvTable::parse(&csv).expect("well-formed epoch CSV");
    assert_eq!(table.rows(), EPOCHS);
    // 2 id columns + 7 per-core blocks + 13 scalar columns
    assert_eq!(table.headers().len(), 2 + 7 * CORES + 13);
    assert_eq!(table.headers()[0], "epoch");
    assert_eq!(table.headers()[1], "end_cycle");
    for name in ["camat0", "amat1", "llc_active0", "l1_mshr1", "l2_mshr0"] {
        assert!(table.column_index(name).is_some(), "missing column {name}");
    }
    let actives = table
        .numeric_column(table.column_index("llc_active0").unwrap())
        .expect("numeric column");
    assert_eq!(actives, vec![100.0, 200.0, 300.0]);

    // -- epoch JSONL: one parseable object per epoch with the full keys
    let jsonl = read(&dir, "rt_epochs.jsonl");
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), EPOCHS);
    for line in lines {
        let obj = parse_json(line);
        for key in [
            "epoch",
            "end_cycle",
            "camat",
            "amat",
            "obstructed",
            "llc_active",
            "llc_accesses",
            "l1_mshr_occupancy",
            "l2_mshr_occupancy",
            "demand_accesses",
        ] {
            assert!(obj.get(key).is_some(), "jsonl missing {key}");
        }
        assert_eq!(obj.get("camat").unwrap().as_arr().unwrap().len(), CORES);
    }

    // -- Chrome trace: valid JSON, expected event population
    let trace = parse_json(&read(&dir, "rt_trace.json"));
    let events = trace
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    let by_cat = |cat: &str| {
        events
            .iter()
            .filter(|e| e.get("cat").and_then(|c| c.as_str()) == Some(cat))
            .count()
    };
    assert_eq!(by_cat("epoch"), EPOCHS);
    assert_eq!(by_cat("policy"), EPOCHS, "one boundary event per epoch");
    assert_eq!(by_cat("request"), SPANS);
    // each synthetic span has 4 nonzero stages
    assert_eq!(by_cat("stage"), SPANS * 4);
    for ev in events {
        for key in ["name", "cat", "ph", "ts", "pid", "tid"] {
            assert!(ev.get(key).is_some(), "trace event missing {key}");
        }
    }
    // stage slices tile their request exactly
    let requests: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("cat").and_then(|c| c.as_str()) == Some("request"))
        .collect();
    for req in requests {
        let (ts, dur) = (
            req.get("ts").unwrap().as_num().unwrap(),
            req.get("dur").unwrap().as_num().unwrap(),
        );
        let covered: f64 = events
            .iter()
            .filter(|e| {
                e.get("cat").and_then(|c| c.as_str()) == Some("stage")
                    && e.get("tid") == req.get("tid")
                    && e.get("ts").unwrap().as_num().unwrap() >= ts
                    && e.get("ts").unwrap().as_num().unwrap() < ts + dur
            })
            .map(|e| e.get("dur").unwrap().as_num().unwrap())
            .sum();
        assert_eq!(covered, dur, "stage slices must tile the request span");
    }

    // -- metrics: valid JSON object
    let metrics = parse_json(&read(&dir, "rt_metrics.json"));
    assert!(matches!(metrics, Json::Obj(_)));

    // -- attribution CSV: one row per (core, kind) plus the roll-up
    let attrib = read(&dir, "rt_attrib.csv");
    let table = CsvTable::parse(&attrib).expect("well-formed attrib CSV");
    assert_eq!(table.rows(), 2 * CORES + 1);
    assert_eq!(
        table.headers().len(),
        5 + 4 + STAGE_COUNT,
        "id columns + served-by levels + stages"
    );
    let last = table.rows() - 1;
    assert_eq!(table.cell(last, 0), Some("all"));
    assert_eq!(table.cell(last, 1), Some("total"));

    // -- attribution text report mentions every stage
    let txt = read(&dir, "rt_attrib.txt");
    for stage in Stage::ALL {
        assert!(
            txt.contains(stage.name()),
            "report missing {}",
            stage.name()
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}
