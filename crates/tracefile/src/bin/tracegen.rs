//! Record a registered workload (or `+`-joined mix) to a `.ctf` trace.
//!
//! ```text
//! tracegen --workload NAME [--cores N] [--seed N | --base-seed N]
//!          [--instructions N] (--out FILE | --out-dir DIR)
//!          [--codec compact|champsim] [--interval N]
//! ```
//!
//! `--seed` is the raw generator seed. `--base-seed` instead takes a
//! grid base seed (the experiments' `--seed`, default `0x5EED`) and
//! derives the generator seed exactly as grid cells do
//! ([`chrome_exec::workload_seed`]) — use it to record traces that
//! `--trace-dir` grid runs will resolve.
//!
//! With `--out-dir` the file is named `<workload>_c<cores>_s<seed>.ctf`
//! (with `+` mapped to `-`). The identity stored in the manifest is what
//! the grid resolves against, not the file name.

use std::path::PathBuf;
use std::process::exit;

use chrome_tracefile::recorder::{record_workload, DEFAULT_INTERVAL_INSTR};
use chrome_tracefile::Codec;

struct Options {
    workload: String,
    cores: usize,
    seed: u64,
    base_seed: Option<u64>,
    instructions: u64,
    out: Option<PathBuf>,
    out_dir: Option<PathBuf>,
    codec: Codec,
    interval: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: tracegen --workload NAME [--cores N] [--seed N | --base-seed N] \
         [--instructions N] (--out FILE | --out-dir DIR) \
         [--codec compact|champsim] [--interval N]"
    );
    exit(2);
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options {
        workload: String::new(),
        cores: 1,
        seed: 0x5EED,
        base_seed: None,
        instructions: 200_000,
        out: None,
        out_dir: None,
        codec: Codec::Compact,
        interval: DEFAULT_INTERVAL_INSTR,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => {
                i += 1;
                opts.workload = args.get(i).unwrap_or_else(|| usage()).clone();
            }
            "--cores" => {
                i += 1;
                opts.cores = args[i].parse().expect("--cores takes a number");
            }
            "--seed" => {
                i += 1;
                opts.seed = args[i].parse().expect("--seed takes a number");
            }
            "--base-seed" => {
                i += 1;
                opts.base_seed = Some(args[i].parse().expect("--base-seed takes a number"));
            }
            "--instructions" => {
                i += 1;
                opts.instructions = args[i].parse().expect("--instructions takes a number");
            }
            "--out" => {
                i += 1;
                opts.out = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "--out-dir" => {
                i += 1;
                opts.out_dir = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "--codec" => {
                i += 1;
                opts.codec = Codec::parse(args.get(i).unwrap_or_else(|| usage()))
                    .unwrap_or_else(|| panic!("--codec takes 'compact' or 'champsim'"));
            }
            "--interval" => {
                i += 1;
                opts.interval = args[i].parse().expect("--interval takes a number");
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
        i += 1;
    }
    if opts.workload.is_empty() || (opts.out.is_none() == opts.out_dir.is_none()) {
        usage();
    }
    // a `+`-joined mix names one workload per core
    if opts.workload.contains('+') {
        opts.cores = opts.workload.split('+').count();
    }
    if let Some(base) = opts.base_seed {
        opts.seed = chrome_exec::workload_seed(&opts.workload, opts.cores as u32, base);
    }
    opts
}

fn main() {
    let opts = parse_args();
    let path = match (&opts.out, &opts.out_dir) {
        (Some(f), None) => f.clone(),
        (None, Some(d)) => {
            std::fs::create_dir_all(d).unwrap_or_else(|e| panic!("creating {}: {e}", d.display()));
            d.join(format!(
                "{}_c{}_s{}.ctf",
                opts.workload.replace('+', "-"),
                opts.cores,
                opts.seed
            ))
        }
        _ => usage(),
    };
    match record_workload(
        &path,
        &opts.workload,
        opts.cores,
        opts.seed,
        opts.instructions,
        opts.codec,
        opts.interval,
    ) {
        Ok(m) => {
            println!("recorded {} -> {}", opts.workload, path.display());
            println!(
                "  codec={} cores={} quota={} records={} instructions={} \
                 stream_bytes={} bytes/instr={:.3} hash={}",
                m.codec.name(),
                m.cores.len(),
                m.quota,
                m.total_records(),
                m.total_instructions(),
                m.total_stream_bytes(),
                m.bytes_per_instruction(),
                m.hash_hex(),
            );
        }
        Err(e) => {
            eprintln!("tracegen: {e}");
            exit(1);
        }
    }
}
