//! Inspect and validate a `.ctf` trace file.
//!
//! ```text
//! traceinfo PATH [--intervals] [--intervals-csv PATH] [--verify] [--cross-check]
//! ```
//!
//! By default prints the footer manifest (codec, quota, generator spec,
//! content hash, per-core streams, compression rate) plus an interval
//! summary. `--intervals` prints every per-interval stat row,
//! `--intervals-csv` writes them to a CSV file (the clustering input),
//! `--verify` fully decodes all streams and recomputes the content
//! hash, and `--cross-check` re-runs the generator named in the
//! manifest's spec and compares record-by-record. Any failure exits
//! nonzero with a descriptive message.

use std::path::PathBuf;
use std::process::exit;

use chrome_tracefile::recorder::build_workload_sources;
use chrome_tracefile::{TraceFile, TraceFileError};

struct Options {
    path: PathBuf,
    intervals: bool,
    intervals_csv: Option<PathBuf>,
    verify: bool,
    cross_check: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: traceinfo PATH [--intervals] [--intervals-csv PATH] [--verify] [--cross-check]"
    );
    exit(2);
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options {
        path: PathBuf::new(),
        intervals: false,
        intervals_csv: None,
        verify: false,
        cross_check: false,
    };
    let mut path = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--intervals" => opts.intervals = true,
            "--intervals-csv" => {
                i += 1;
                let p = args.get(i).unwrap_or_else(|| usage());
                opts.intervals_csv = Some(PathBuf::from(p));
            }
            "--verify" => opts.verify = true,
            "--cross-check" => opts.cross_check = true,
            "--help" | "-h" => usage(),
            other if !other.starts_with("--") => path = Some(PathBuf::from(other)),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
        i += 1;
    }
    opts.path = path.unwrap_or_else(|| usage());
    opts
}

/// Render every core's interval stats as one CSV table (the clustering
/// input, inspectable without the `simpoint` bin). Recomputes stats for
/// cores whose manifest predates interval recording.
fn intervals_csv(tf: &TraceFile, out: &PathBuf) -> Result<(), TraceFileError> {
    use std::io::Write;
    let mut f = std::io::BufWriter::new(std::fs::File::create(out)?);
    writeln!(
        f,
        "core,interval,instructions,records,loads,stores,dep_loads,distinct_lines,min_line,max_line"
    )?;
    for i in 0..tf.manifest().cores.len() {
        for (j, iv) in tf.intervals_for(i)?.iter().enumerate() {
            writeln!(
                f,
                "{i},{j},{},{},{},{},{},{},{},{}",
                iv.instructions,
                iv.records,
                iv.loads,
                iv.stores,
                iv.dep_loads,
                iv.distinct_lines,
                iv.min_line,
                iv.max_line
            )?;
        }
    }
    f.flush()?;
    Ok(())
}

fn main() {
    let opts = parse_args();
    let tf = match TraceFile::open(&opts.path) {
        Ok(tf) => tf,
        Err(e) => {
            eprintln!("traceinfo: {}: {e}", opts.path.display());
            exit(1);
        }
    };
    let m = tf.manifest();
    println!("{}", opts.path.display());
    println!(
        "  codec={} version=1 cores={} quota={} interval={}",
        m.codec.name(),
        m.cores.len(),
        m.quota,
        m.interval_instr
    );
    println!("  spec: {}", if m.spec.is_empty() { "-" } else { &m.spec });
    println!("  content_hash: {}", m.hash_hex());
    println!(
        "  totals: records={} instructions={} stream_bytes={} bytes/instr={:.3}",
        m.total_records(),
        m.total_instructions(),
        m.total_stream_bytes(),
        m.bytes_per_instruction()
    );
    for (i, c) in m.cores.iter().enumerate() {
        println!(
            "  core {i}: {:<16} records={:<9} instructions={:<9} bytes={:<9} intervals={}",
            c.name,
            c.records,
            c.instructions,
            c.stream_len,
            c.intervals.len()
        );
        if opts.intervals {
            for (j, iv) in c.intervals.iter().enumerate() {
                println!(
                    "    [{j:>3}] instr={:<7} rec={:<6} ld={:<6} st={:<6} dep={:<6} \
                     lines={:<6} span={:#x}..{:#x}",
                    iv.instructions,
                    iv.records,
                    iv.loads,
                    iv.stores,
                    iv.dep_loads,
                    iv.distinct_lines,
                    iv.min_line << 6,
                    (iv.max_line + 1) << 6,
                );
            }
        }
    }
    if m.cores.len() > 1 {
        // Instruction-count skew across cores: multi-core sims run until
        // the slowest core's budget is met, so a skewed trace leaves the
        // lighter cores replaying past their recorded window.
        let counts: Vec<u64> = m.cores.iter().map(|c| c.instructions).collect();
        let (min, max) = (
            *counts.iter().min().unwrap_or(&0),
            *counts.iter().max().unwrap_or(&0),
        );
        let mean = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
        let lightest = counts.iter().position(|&c| c == min).unwrap_or(0);
        let heaviest = counts.iter().position(|&c| c == max).unwrap_or(0);
        let skew = if mean > 0.0 {
            100.0 * (max - min) as f64 / mean
        } else {
            0.0
        };
        println!(
            "  skew: instructions min={min} (core {lightest}) max={max} (core {heaviest}) \
             mean={mean:.0} spread={skew:.2}% of mean"
        );
    }

    let mut failed = false;
    if let Some(csv) = &opts.intervals_csv {
        match intervals_csv(&tf, csv) {
            Ok(()) => println!("  intervals-csv: wrote {}", csv.display()),
            Err(e) => {
                eprintln!("  intervals-csv: FAILED: {e}");
                failed = true;
            }
        }
    }
    if opts.verify {
        match tf.verify() {
            Ok(()) => println!("  verify: ok (streams decode, counts and hash match)"),
            Err(e) => {
                eprintln!("  verify: FAILED: {e}");
                failed = true;
            }
        }
    }
    if opts.cross_check {
        match cross_check(&tf) {
            Ok(n) => println!("  cross-check: ok ({n} records match a fresh generator run)"),
            Err(e) => {
                eprintln!("  cross-check: FAILED: {e}");
                failed = true;
            }
        }
    }
    if failed {
        exit(1);
    }
}

/// Re-run the generator identified by the manifest spec and compare
/// record-by-record against each decoded stream.
fn cross_check(tf: &TraceFile) -> Result<u64, TraceFileError> {
    let m = tf.manifest();
    let workload = m
        .spec_field("workload")
        .ok_or_else(|| TraceFileError::Corrupt("manifest spec has no workload identity".into()))?
        .to_string();
    let cores: usize = m
        .spec_field("cores")
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| TraceFileError::Corrupt("manifest spec has no core count".into()))?;
    let seed: u64 = m
        .spec_field("seed")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| TraceFileError::Corrupt("manifest spec has no seed".into()))?;
    let mut sources = build_workload_sources(&workload, cores, seed)?;
    let mut total = 0u64;
    for (i, src) in sources.iter_mut().enumerate() {
        let decoded = tf.decode_core(i)?;
        for (j, rec) in decoded.iter().enumerate() {
            let mut live = src.next_record();
            if j == 0 {
                live.dep_prev = false; // recorder canonicalizes the leading dep
            }
            if *rec != live {
                return Err(TraceFileError::Corrupt(format!(
                    "core {i} record {j} diverges from generator: file {rec:?}, live {live:?}"
                )));
            }
            total += 1;
        }
    }
    Ok(total)
}
