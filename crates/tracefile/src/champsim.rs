//! The ChampSim-compatible codec: 64-byte `input_instr` records.
//!
//! Layout (little-endian, matching ChampSim's `trace_instruction.h` /
//! the DPC-3 trace format):
//!
//! ```text
//! offset  field
//!  0..8   ip                        (u64)
//!  8      is_branch                 (u8)
//!  9      branch_taken              (u8)
//! 10..12  destination_registers[2]  (u8 × 2)
//! 12..16  source_registers[4]       (u8 × 4)
//! 16..32  destination_memory[2]     (u64 × 2)
//! 32..64  source_memory[4]          (u64 × 4)
//! ```
//!
//! Mapping onto [`TraceRecord`]:
//!
//! * a load is an instruction with `source_memory[0] = vaddr`; a store
//!   has `destination_memory[0] = vaddr`;
//! * the `nonmem_before` run materializes as that many instructions with
//!   no memory operands (this is what makes the layout 64 bytes per
//!   *instruction*, not per record);
//! * `dep_prev` is encoded through register dataflow, as in real traces:
//!   the depended-on memory instruction gets `destination_registers[0] =
//!   DEP_REG` (patched retroactively via a one-instruction delay buffer)
//!   and the dependent one `source_registers[0] = DEP_REG`. The decoder
//!   recovers `dep_prev` as "reads a register the previous memory
//!   instruction wrote", which also yields plausible dependence chains
//!   when ingesting real DPC-3 traces.
//!
//! A zero memory operand means "no operand" in this layout, so address 0
//! is unrepresentable; the encoder reports it as an error rather than
//! silently dropping the access. Decoding never fails on record content —
//! any 64 bytes is a valid instruction — only on a stream length that is
//! not a multiple of 64.

use chrome_sim::types::{AccessKind, TraceRecord};

use crate::format::TraceFileError;

/// Bytes per `input_instr`.
pub const INSTR_LEN: usize = 64;

/// The architectural register used to encode `dep_prev` dataflow.
pub const DEP_REG: u8 = 25;

const OFF_DEST_REGS: usize = 10;
const OFF_SRC_REGS: usize = 12;
const OFF_DEST_MEM: usize = 16;
const OFF_SRC_MEM: usize = 32;

fn read_u64(instr: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(instr[off..off + 8].try_into().expect("8 bytes"))
}

/// Streaming encoder with the one-instruction delay buffer needed to
/// patch a depended-on instruction's destination register.
#[derive(Debug, Default)]
pub struct Encoder {
    prev: Option<[u8; INSTR_LEN]>,
}

impl Encoder {
    /// A fresh encoder (stream start).
    #[must_use]
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Encode one record, appending finished instructions to `out`.
    /// The most recent memory instruction stays buffered until the next
    /// record (or [`Encoder::flush`]) decides whether it needs the
    /// dependence-target register patch.
    pub fn push(&mut self, rec: &TraceRecord, out: &mut Vec<u8>) -> Result<(), TraceFileError> {
        if rec.vaddr == 0 {
            return Err(TraceFileError::Unrepresentable(
                "address 0 is the ChampSim layout's \"no operand\" marker".into(),
            ));
        }
        let mut cur = [0u8; INSTR_LEN];
        cur[0..8].copy_from_slice(&rec.pc.to_le_bytes());
        match rec.kind {
            AccessKind::Load => {
                cur[OFF_SRC_MEM..OFF_SRC_MEM + 8].copy_from_slice(&rec.vaddr.to_le_bytes())
            }
            AccessKind::Store => {
                cur[OFF_DEST_MEM..OFF_DEST_MEM + 8].copy_from_slice(&rec.vaddr.to_le_bytes());
            }
        }
        if rec.dep_prev {
            if let Some(prev) = &mut self.prev {
                prev[OFF_DEST_REGS] = DEP_REG;
                cur[OFF_SRC_REGS] = DEP_REG;
            }
            // with no previous memory instruction the dependence is a
            // no-op (nothing to wait for); it is canonicalized away
        }
        if let Some(prev) = self.prev.take() {
            out.extend_from_slice(&prev);
        }
        // the non-memory run preceding this access, one empty
        // instruction each, carrying the access's ip
        let mut nonmem = [0u8; INSTR_LEN];
        nonmem[0..8].copy_from_slice(&rec.pc.to_le_bytes());
        for _ in 0..rec.nonmem_before {
            out.extend_from_slice(&nonmem);
        }
        self.prev = Some(cur);
        Ok(())
    }

    /// Flush the delayed instruction at end of stream.
    pub fn flush(&mut self, out: &mut Vec<u8>) {
        if let Some(prev) = self.prev.take() {
            out.extend_from_slice(&prev);
        }
    }
}

/// Streaming decoder: carries the non-memory run and the previous memory
/// instruction's destination registers across chunk boundaries.
#[derive(Debug, Default)]
pub struct Decoder {
    nonmem: u64,
    last_dest: [u8; 2],
}

impl Decoder {
    /// A fresh decoder (stream start / wraparound).
    #[must_use]
    pub fn new() -> Self {
        Decoder::default()
    }

    /// Decode one 64-byte instruction, appending any completed records.
    /// Instructions without memory operands accumulate into the next
    /// record's `nonmem_before` (saturating at `u16::MAX`; real traces
    /// with longer compute runs lose the excess, which only shortens
    /// simulated compute phases).
    pub fn push_instr(&mut self, instr: &[u8], out: &mut Vec<TraceRecord>) {
        debug_assert_eq!(instr.len(), INSTR_LEN);
        let pc = read_u64(instr, 0);
        let dest_regs = [instr[OFF_DEST_REGS], instr[OFF_DEST_REGS + 1]];
        let src_regs = &instr[OFF_SRC_REGS..OFF_SRC_REGS + 4];
        let mut operands: Vec<(u64, AccessKind)> = Vec::new();
        for i in 0..4 {
            let a = read_u64(instr, OFF_SRC_MEM + i * 8);
            if a != 0 {
                operands.push((a, AccessKind::Load));
            }
        }
        for i in 0..2 {
            let a = read_u64(instr, OFF_DEST_MEM + i * 8);
            if a != 0 {
                operands.push((a, AccessKind::Store));
            }
        }
        if operands.is_empty() {
            self.nonmem += 1;
            return;
        }
        let dep = src_regs
            .iter()
            .any(|&r| r != 0 && self.last_dest.contains(&r));
        let mut nonmem_before = self.nonmem.min(u64::from(u16::MAX)) as u16;
        self.nonmem = 0;
        let mut dep_prev = dep;
        for (vaddr, kind) in operands {
            out.push(TraceRecord {
                nonmem_before,
                pc,
                vaddr,
                kind,
                dep_prev,
            });
            nonmem_before = 0;
            dep_prev = false;
        }
        self.last_dest = dest_regs;
    }
}

/// Encode a whole record slice (validation/test path).
pub fn encode_stream(records: &[TraceRecord]) -> Result<Vec<u8>, TraceFileError> {
    let mut enc = Encoder::new();
    let mut out = Vec::with_capacity(records.len() * INSTR_LEN);
    for rec in records {
        enc.push(rec, &mut out)?;
    }
    enc.flush(&mut out);
    Ok(out)
}

/// Decode a whole stream (validation path; the streaming reader feeds
/// chunks through a [`Decoder`] instead). Fails only on a length that is
/// not a multiple of [`INSTR_LEN`].
pub fn decode_stream(bytes: &[u8]) -> Result<Vec<TraceRecord>, TraceFileError> {
    if !bytes.len().is_multiple_of(INSTR_LEN) {
        return Err(TraceFileError::Truncated("partial input_instr record"));
    }
    let mut dec = Decoder::new();
    let mut out = Vec::with_capacity(bytes.len() / INSTR_LEN / 4);
    for instr in bytes.chunks_exact(INSTR_LEN) {
        dec.push_instr(instr, &mut out);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canon_first_dep(mut recs: Vec<TraceRecord>) -> Vec<TraceRecord> {
        if let Some(first) = recs.first_mut() {
            first.dep_prev = false;
        }
        recs
    }

    #[test]
    fn roundtrip_with_dependences_and_gaps() {
        let recs = vec![
            TraceRecord::load(0x400_000, 0x1000, 3),
            TraceRecord::dep_load(0x400_010, 0x2000, 0),
            TraceRecord::dep_load(0x400_020, 0x3000, 5),
            TraceRecord::store(0x400_030, 0x4000, 2),
            TraceRecord::load(0x400_040, 0x5000, 0),
        ];
        let bytes = encode_stream(&recs).unwrap();
        // 5 memory instructions + 3+5+2 non-memory = 15 instructions
        assert_eq!(bytes.len(), 15 * INSTR_LEN);
        assert_eq!(decode_stream(&bytes).unwrap(), recs);
    }

    #[test]
    fn leading_dependence_is_canonicalized_away() {
        let recs = vec![
            TraceRecord::dep_load(0x400, 0x1000, 0),
            TraceRecord::load(0x404, 0x2000, 1),
        ];
        let bytes = encode_stream(&recs).unwrap();
        assert_eq!(decode_stream(&bytes).unwrap(), canon_first_dep(recs));
    }

    #[test]
    fn address_zero_is_rejected() {
        let rec = TraceRecord::load(0x400, 0, 0);
        assert!(matches!(
            encode_stream(&[rec]),
            Err(TraceFileError::Unrepresentable(_))
        ));
    }

    #[test]
    fn partial_record_is_truncation() {
        let bytes = encode_stream(&[TraceRecord::load(0x400, 0x1000, 0)]).unwrap();
        assert!(decode_stream(&bytes[..INSTR_LEN - 1]).is_err());
    }

    #[test]
    fn multi_operand_foreign_instr_decodes_to_multiple_records() {
        // a hand-built "real trace" instruction: two loads and a store
        let mut instr = [0u8; INSTR_LEN];
        instr[0..8].copy_from_slice(&0xBEEFu64.to_le_bytes());
        instr[OFF_SRC_MEM..OFF_SRC_MEM + 8].copy_from_slice(&0x1000u64.to_le_bytes());
        instr[OFF_SRC_MEM + 8..OFF_SRC_MEM + 16].copy_from_slice(&0x2000u64.to_le_bytes());
        instr[OFF_DEST_MEM..OFF_DEST_MEM + 8].copy_from_slice(&0x3000u64.to_le_bytes());
        let mut dec = Decoder::new();
        let mut out = Vec::new();
        dec.push_instr(&instr, &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].kind, AccessKind::Load);
        assert_eq!(out[2].kind, AccessKind::Store);
        assert_eq!(out[2].nonmem_before, 0);
    }

    #[test]
    fn nonmem_saturates_at_u16_max() {
        let mut dec = Decoder::new();
        let mut out = Vec::new();
        let empty = [0u8; INSTR_LEN];
        for _ in 0..(u32::from(u16::MAX) + 10) {
            dec.push_instr(&empty, &mut out);
        }
        let mut mem = [0u8; INSTR_LEN];
        mem[OFF_SRC_MEM..OFF_SRC_MEM + 8].copy_from_slice(&0x40u64.to_le_bytes());
        dec.push_instr(&mem, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].nonmem_before, u16::MAX);
    }
}
