//! The native compact frame codec.
//!
//! Records are grouped into frames (a few thousand records each). Every
//! frame is independently decodable — the delta state resets at each
//! frame start — which is what lets the streaming reader decode frame by
//! frame on a background thread and wrap around at end of stream without
//! carrying state.
//!
//! Frame layout:
//!
//! ```text
//! u32 payload_len | u32 record_count | payload
//! ```
//!
//! Each record in the payload:
//!
//! ```text
//! varint( nonmem_before << 2 | is_store << 1 | dep_prev )
//! varint( zigzag(pc    - prev_pc) )
//! varint( zigzag(vaddr - prev_vaddr) )
//! ```
//!
//! The head varint run-length-encodes the non-memory gap preceding the
//! access; pc/vaddr are delta-from-previous signed LEB128 (zigzag)
//! varints, so strided and looping streams cost 1–2 bytes per field.

use chrome_sim::types::{AccessKind, TraceRecord};

use crate::format::TraceFileError;

/// Records per frame the recorder targets. Small enough that two
/// decoded frames (the reader's double buffer) stay well under a
/// megabyte; large enough that frame headers are noise.
pub const FRAME_RECORDS: usize = 4096;

/// Byte length of the fixed frame header.
pub const FRAME_HEADER_LEN: usize = 8;

/// ZigZag-map a signed delta onto an unsigned varint payload.
#[inline]
#[must_use]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
#[must_use]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append an LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read an LEB128 varint from `buf` at `*pos`, advancing it. Truncated
/// or overlong (> 10 byte) encodings are errors.
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, TraceFileError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or(TraceFileError::Truncated("varint in frame payload"))?;
        *pos += 1;
        if shift >= 64 {
            return Err(TraceFileError::Corrupt("overlong varint".into()));
        }
        v |= u64::from(byte & 0x7f)
            .checked_shl(shift)
            .ok_or_else(|| TraceFileError::Corrupt("varint overflow".into()))?;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Encode `records` into one frame (header + payload).
#[must_use]
pub fn encode_frame(records: &[TraceRecord]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(records.len() * 6);
    let (mut prev_pc, mut prev_vaddr) = (0u64, 0u64);
    for rec in records {
        let head = (u64::from(rec.nonmem_before) << 2)
            | (u64::from(rec.kind == AccessKind::Store) << 1)
            | u64::from(rec.dep_prev);
        put_varint(&mut payload, head);
        put_varint(&mut payload, zigzag(rec.pc.wrapping_sub(prev_pc) as i64));
        put_varint(
            &mut payload,
            zigzag(rec.vaddr.wrapping_sub(prev_vaddr) as i64),
        );
        prev_pc = rec.pc;
        prev_vaddr = rec.vaddr;
    }
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&(records.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Parse a frame header; returns `(payload_len, record_count)`.
pub fn decode_frame_header(h: &[u8]) -> Result<(usize, usize), TraceFileError> {
    if h.len() < FRAME_HEADER_LEN {
        return Err(TraceFileError::Truncated("frame header"));
    }
    let payload_len = u32::from_le_bytes(h[0..4].try_into().expect("4")) as usize;
    let nrec = u32::from_le_bytes(h[4..8].try_into().expect("4")) as usize;
    if nrec > (1 << 26) || payload_len > (1 << 30) {
        return Err(TraceFileError::Corrupt(format!(
            "implausible frame ({nrec} records, {payload_len} payload bytes)"
        )));
    }
    Ok((payload_len, nrec))
}

/// Decode one frame payload of `nrec` records into `out`.
pub fn decode_frame_payload(
    payload: &[u8],
    nrec: usize,
    out: &mut Vec<TraceRecord>,
) -> Result<(), TraceFileError> {
    let mut pos = 0usize;
    let (mut prev_pc, mut prev_vaddr) = (0u64, 0u64);
    out.reserve(nrec);
    for _ in 0..nrec {
        let head = get_varint(payload, &mut pos)?;
        let nonmem = head >> 2;
        if nonmem > u64::from(u16::MAX) {
            return Err(TraceFileError::Corrupt(format!(
                "non-memory run {nonmem} exceeds u16"
            )));
        }
        let pc = prev_pc.wrapping_add(unzigzag(get_varint(payload, &mut pos)?) as u64);
        let vaddr = prev_vaddr.wrapping_add(unzigzag(get_varint(payload, &mut pos)?) as u64);
        out.push(TraceRecord {
            nonmem_before: nonmem as u16,
            pc,
            vaddr,
            kind: if head & 0b10 != 0 {
                AccessKind::Store
            } else {
                AccessKind::Load
            },
            dep_prev: head & 0b01 != 0,
        });
        prev_pc = pc;
        prev_vaddr = vaddr;
    }
    if pos != payload.len() {
        return Err(TraceFileError::Corrupt(format!(
            "frame payload has {} trailing bytes",
            payload.len() - pos
        )));
    }
    Ok(())
}

/// Decode a whole stream of back-to-back frames (validation path; the
/// streaming reader decodes frame by frame instead).
pub fn decode_stream(bytes: &[u8]) -> Result<Vec<TraceRecord>, TraceFileError> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let (payload_len, nrec) = decode_frame_header(&bytes[pos..])?;
        pos += FRAME_HEADER_LEN;
        let end = pos
            .checked_add(payload_len)
            .filter(|&e| e <= bytes.len())
            .ok_or(TraceFileError::Truncated("frame payload"))?;
        decode_frame_payload(&bytes[pos..end], nrec, &mut out)?;
        pos = end;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord::load(0x400_000, 0x1000, 3),
            TraceRecord::load(0x400_004, 0x1040, 0),
            TraceRecord::store(0x400_008, 0x1080, 17),
            TraceRecord::dep_load(0x400_000, 0x9_0000_0000, 2),
            TraceRecord::load(0x3ff_ffc, 0x40, u16::MAX),
        ]
    }

    #[test]
    fn frame_roundtrips() {
        let recs = sample_records();
        let frame = encode_frame(&recs);
        let (plen, nrec) = decode_frame_header(&frame).unwrap();
        assert_eq!(nrec, recs.len());
        let mut out = Vec::new();
        decode_frame_payload(
            &frame[FRAME_HEADER_LEN..FRAME_HEADER_LEN + plen],
            nrec,
            &mut out,
        )
        .unwrap();
        assert_eq!(out, recs);
    }

    #[test]
    fn stream_of_frames_roundtrips() {
        let recs = sample_records();
        let mut stream = encode_frame(&recs[..2]);
        stream.extend_from_slice(&encode_frame(&recs[2..]));
        assert_eq!(decode_stream(&stream).unwrap(), recs);
    }

    #[test]
    fn strided_stream_is_tiny() {
        // 1000 records of a 64-byte stride with pc fixed: head 1 byte,
        // pc delta 1 byte, vaddr delta 2 bytes => ~4 bytes/record.
        let recs: Vec<TraceRecord> = (0..1000)
            .map(|i| TraceRecord::load(0x400_000, 0x10_0000 + i * 64, 2))
            .collect();
        let frame = encode_frame(&recs);
        assert!(
            frame.len() < recs.len() * 5,
            "{} bytes for {} records",
            frame.len(),
            recs.len()
        );
    }

    #[test]
    fn zigzag_roundtrips_extremes() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn varint_roundtrips() {
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn truncated_and_corrupt_frames_error_not_panic() {
        let frame = encode_frame(&sample_records());
        // every possible truncation of the stream fails cleanly
        for cut in 0..frame.len() {
            assert!(decode_stream(&frame[..cut]).is_err() || cut == 0);
        }
        // trailing garbage after the declared payload
        let mut padded = frame.clone();
        padded.extend_from_slice(&[0xff; 3]);
        assert!(decode_stream(&padded).is_err());
        // overlong varint
        let overlong = [0xffu8; 11];
        let mut pos = 0;
        assert!(get_varint(&overlong, &mut pos).is_err());
    }

    #[test]
    fn nonmem_overflow_is_corrupt() {
        // forge a head varint with nonmem > u16::MAX
        let mut payload = Vec::new();
        put_varint(&mut payload, (u64::from(u16::MAX) + 1) << 2);
        put_varint(&mut payload, 0);
        put_varint(&mut payload, 0);
        let mut out = Vec::new();
        assert!(decode_frame_payload(&payload, 1, &mut out).is_err());
    }
}
