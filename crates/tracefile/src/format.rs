//! The `.ctf` container format: header, footer manifest, and errors.
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ header (16 B): "CTF1" | version u16 | codec u8 | cores u8 |  │
//! │                reserved [0u8; 8]                             │
//! ├──────────────────────────────────────────────────────────────┤
//! │ core 0 stream  (frames / input_instr records)                │
//! │ core 1 stream                                                │
//! │ ...                                                          │
//! ├──────────────────────────────────────────────────────────────┤
//! │ manifest (binary, see [`Manifest::encode`])                  │
//! ├──────────────────────────────────────────────────────────────┤
//! │ tail (16 B): manifest_off u64 | manifest_len u32 | "CTFE"    │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! The manifest lives in a footer (not the header) so the recorder can
//! stream frames to disk in one pass and only seek once, after the
//! per-core totals, interval stats and content hash are known.

use std::fmt;

/// File magic at offset 0.
pub const MAGIC: &[u8; 4] = b"CTF1";
/// Trailing magic, the last 4 bytes of the file.
pub const TAIL_MAGIC: &[u8; 4] = b"CTFE";
/// Container version this build writes and reads.
pub const VERSION: u16 = 1;
/// Byte length of the fixed header.
pub const HEADER_LEN: u64 = 16;
/// Byte length of the fixed tail.
pub const TAIL_LEN: u64 = 16;

/// Which record encoding a `.ctf` file's streams use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Codec {
    /// Native compact frames: delta-from-previous + LEB128 varints with
    /// run-length-encoded non-memory gaps. See [`crate::codec`].
    #[default]
    Compact,
    /// ChampSim's 64-byte `input_instr` records, one per instruction
    /// (non-memory instructions are materialized). See [`crate::champsim`].
    ChampSim,
}

impl Codec {
    /// Stable on-disk tag.
    #[must_use]
    pub fn tag(self) -> u8 {
        match self {
            Codec::Compact => 0,
            Codec::ChampSim => 1,
        }
    }

    /// Decode an on-disk tag.
    pub fn from_tag(tag: u8) -> Result<Self, TraceFileError> {
        match tag {
            0 => Ok(Codec::Compact),
            1 => Ok(Codec::ChampSim),
            t => Err(TraceFileError::Corrupt(format!("unknown codec tag {t}"))),
        }
    }

    /// Human name (CLI argument / `traceinfo` output form).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Codec::Compact => "compact",
            Codec::ChampSim => "champsim",
        }
    }

    /// Parse a CLI name.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "compact" => Some(Codec::Compact),
            "champsim" => Some(Codec::ChampSim),
            _ => None,
        }
    }
}

/// Everything that can go wrong reading or writing a trace file. Corrupt
/// or truncated inputs surface as errors — never panics.
#[derive(Debug)]
pub enum TraceFileError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file does not start with the `CTF1` magic (or end with `CTFE`).
    BadMagic,
    /// The container version is newer than this build understands.
    BadVersion(u16),
    /// The file ends before a structure it promises (`what` names it).
    Truncated(&'static str),
    /// A structural invariant is violated (bad offsets, counts, tags).
    Corrupt(String),
    /// The decoded stream does not hash to the manifest's content hash.
    HashMismatch {
        /// Hash recorded in the manifest.
        expected: u64,
        /// Hash recomputed from the decoded stream.
        actual: u64,
    },
    /// A record cannot be represented in the requested codec (e.g.
    /// address 0 in the ChampSim layout, where a zero memory operand
    /// means "no operand").
    Unrepresentable(String),
    /// The recorder was asked to capture a workload name the generator
    /// registry does not know.
    UnknownWorkload(String),
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "I/O error: {e}"),
            TraceFileError::BadMagic => write!(f, "not a .ctf trace file (bad magic)"),
            TraceFileError::BadVersion(v) => {
                write!(f, "unsupported trace-file version {v} (this build reads {VERSION})")
            }
            TraceFileError::Truncated(what) => write!(f, "truncated trace file: {what}"),
            TraceFileError::Corrupt(msg) => write!(f, "corrupt trace file: {msg}"),
            TraceFileError::HashMismatch { expected, actual } => write!(
                f,
                "content hash mismatch: manifest says {expected:016x}, stream decodes to {actual:016x}"
            ),
            TraceFileError::Unrepresentable(msg) => {
                write!(f, "record not representable in this codec: {msg}")
            }
            TraceFileError::UnknownWorkload(name) => {
                write!(f, "unknown workload {name:?} (not in the generator registry)")
            }
        }
    }
}

impl std::error::Error for TraceFileError {}

impl From<std::io::Error> for TraceFileError {
    fn from(e: std::io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

/// Summary statistics for one interval of one core's stream (default
/// interval: 100K instructions), recorded for later simulation-interval
/// selection à la SimPoint/Bueno et al.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IntervalStats {
    /// Instructions covered (memory records + their non-memory runs).
    pub instructions: u64,
    /// Memory records in the interval.
    pub records: u64,
    /// Loads among them.
    pub loads: u64,
    /// Stores among them.
    pub stores: u64,
    /// Dependent (pointer-chasing) loads among them.
    pub dep_loads: u64,
    /// Distinct cache lines touched within the interval.
    pub distinct_lines: u64,
    /// Lowest line address touched (`u64::MAX` if no records).
    pub min_line: u64,
    /// Highest line address touched (0 if no records).
    pub max_line: u64,
}

impl IntervalStats {
    const FIELDS: usize = 8;

    fn encode_into(&self, out: &mut Vec<u8>) {
        for v in [
            self.instructions,
            self.records,
            self.loads,
            self.stores,
            self.dep_loads,
            self.distinct_lines,
            self.min_line,
            self.max_line,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn decode(c: &mut Cursor<'_>) -> Result<Self, TraceFileError> {
        let mut v = [0u64; Self::FIELDS];
        for slot in &mut v {
            *slot = c.u64()?;
        }
        Ok(IntervalStats {
            instructions: v[0],
            records: v[1],
            loads: v[2],
            stores: v[3],
            dep_loads: v[4],
            distinct_lines: v[5],
            min_line: v[6],
            max_line: v[7],
        })
    }
}

/// Per-core section of the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreManifest {
    /// Source name this core's stream was captured from (e.g. `"mcf"`).
    pub name: String,
    /// Byte offset of this core's stream in the file.
    pub stream_off: u64,
    /// Byte length of this core's stream.
    pub stream_len: u64,
    /// Memory records in the stream.
    pub records: u64,
    /// Instructions covered (records plus non-memory runs).
    pub instructions: u64,
    /// Interval summary stats, in stream order.
    pub intervals: Vec<IntervalStats>,
}

/// The footer manifest of a `.ctf` file: everything `traceinfo` prints
/// and everything resolution/validation needs without decoding streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Record encoding of every stream.
    pub codec: Codec,
    /// Requested per-core instruction quota the recorder captured to.
    pub quota: u64,
    /// FNV-1a over the canonical decoded record stream of all cores in
    /// order (see [`crate::hash_record`]).
    pub content_hash: u64,
    /// Generator spec this file was recorded from, canonical
    /// `workload=<name>;cores=<n>;seed=<u64>` form.
    pub spec: String,
    /// Interval length in instructions for the per-interval stats.
    pub interval_instr: u64,
    /// One entry per core, in stream order.
    pub cores: Vec<CoreManifest>,
}

impl Manifest {
    /// Total memory records across cores.
    #[must_use]
    pub fn total_records(&self) -> u64 {
        self.cores.iter().map(|c| c.records).sum()
    }

    /// Total instructions covered across cores.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.instructions).sum()
    }

    /// Total stream bytes across cores.
    #[must_use]
    pub fn total_stream_bytes(&self) -> u64 {
        self.cores.iter().map(|c| c.stream_len).sum()
    }

    /// Mean encoded bytes per covered instruction — the compact codec's
    /// headline number (< 8 on the synthetic corpus).
    #[must_use]
    pub fn bytes_per_instruction(&self) -> f64 {
        let instr = self.total_instructions();
        if instr == 0 {
            return 0.0;
        }
        self.total_stream_bytes() as f64 / instr as f64
    }

    /// `content_hash` in the fixed-width hex form used by spec hashing
    /// and artifact names.
    #[must_use]
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", self.content_hash)
    }

    /// A field of the generator [`Manifest::spec`] string
    /// (`key=value;...` form).
    #[must_use]
    pub fn spec_field(&self, key: &str) -> Option<&str> {
        self.spec
            .split(';')
            .find_map(|kv| kv.strip_prefix(key)?.strip_prefix('='))
    }

    /// Serialize to the on-disk binary form.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.push(self.codec.tag());
        out.extend_from_slice(&(self.cores.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.quota.to_le_bytes());
        out.extend_from_slice(&self.content_hash.to_le_bytes());
        out.extend_from_slice(&self.interval_instr.to_le_bytes());
        put_str(&mut out, &self.spec);
        for core in &self.cores {
            put_str(&mut out, &core.name);
            for v in [
                core.stream_off,
                core.stream_len,
                core.records,
                core.instructions,
            ] {
                out.extend_from_slice(&v.to_le_bytes());
            }
            out.extend_from_slice(&(core.intervals.len() as u32).to_le_bytes());
            for iv in &core.intervals {
                iv.encode_into(&mut out);
            }
        }
        out
    }

    /// Parse the on-disk binary form.
    pub fn decode(bytes: &[u8]) -> Result<Self, TraceFileError> {
        let mut c = Cursor::new(bytes);
        let codec = Codec::from_tag(c.u8()?)?;
        let n_cores = c.u32()? as usize;
        if n_cores == 0 || n_cores > 4096 {
            return Err(TraceFileError::Corrupt(format!(
                "implausible core count {n_cores}"
            )));
        }
        let quota = c.u64()?;
        let content_hash = c.u64()?;
        let interval_instr = c.u64()?;
        let spec = c.string()?;
        let mut cores = Vec::with_capacity(n_cores);
        for _ in 0..n_cores {
            let name = c.string()?;
            let stream_off = c.u64()?;
            let stream_len = c.u64()?;
            let records = c.u64()?;
            let instructions = c.u64()?;
            let n_iv = c.u32()? as usize;
            if n_iv > 1 << 24 {
                return Err(TraceFileError::Corrupt(format!(
                    "implausible interval count {n_iv}"
                )));
            }
            let mut intervals = Vec::with_capacity(n_iv);
            for _ in 0..n_iv {
                intervals.push(IntervalStats::decode(&mut c)?);
            }
            cores.push(CoreManifest {
                name,
                stream_off,
                stream_len,
                records,
                instructions,
                intervals,
            });
        }
        Ok(Manifest {
            codec,
            quota,
            content_hash,
            spec,
            interval_instr,
            cores,
        })
    }
}

/// Render the fixed 16-byte header.
#[must_use]
pub fn encode_header(codec: Codec, cores: u8) -> [u8; HEADER_LEN as usize] {
    let mut h = [0u8; HEADER_LEN as usize];
    h[0..4].copy_from_slice(MAGIC);
    h[4..6].copy_from_slice(&VERSION.to_le_bytes());
    h[6] = codec.tag();
    h[7] = cores;
    h
}

/// Validate a header; returns `(codec, cores)`.
pub fn decode_header(h: &[u8]) -> Result<(Codec, u8), TraceFileError> {
    if h.len() < HEADER_LEN as usize {
        return Err(TraceFileError::Truncated("header"));
    }
    if &h[0..4] != MAGIC {
        return Err(TraceFileError::BadMagic);
    }
    let version = u16::from_le_bytes([h[4], h[5]]);
    if version != VERSION {
        return Err(TraceFileError::BadVersion(version));
    }
    Ok((Codec::from_tag(h[6])?, h[7]))
}

/// Render the fixed 16-byte tail.
#[must_use]
pub fn encode_tail(manifest_off: u64, manifest_len: u32) -> [u8; TAIL_LEN as usize] {
    let mut t = [0u8; TAIL_LEN as usize];
    t[0..8].copy_from_slice(&manifest_off.to_le_bytes());
    t[8..12].copy_from_slice(&manifest_len.to_le_bytes());
    t[12..16].copy_from_slice(TAIL_MAGIC);
    t
}

/// Validate a tail; returns `(manifest_off, manifest_len)`.
pub fn decode_tail(t: &[u8]) -> Result<(u64, u32), TraceFileError> {
    if t.len() < TAIL_LEN as usize {
        return Err(TraceFileError::Truncated("footer tail"));
    }
    if &t[12..16] != TAIL_MAGIC {
        return Err(TraceFileError::BadMagic);
    }
    let off = u64::from_le_bytes(t[0..8].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(t[8..12].try_into().expect("4 bytes"));
    Ok((off, len))
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked little-endian reader over a byte slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceFileError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(TraceFileError::Truncated("manifest field"))?;
        if end > self.buf.len() {
            return Err(TraceFileError::Truncated("manifest field"));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, TraceFileError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, TraceFileError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, TraceFileError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn string(&mut self) -> Result<String, TraceFileError> {
        let len = self.u32()? as usize;
        if len > 1 << 20 {
            return Err(TraceFileError::Corrupt(format!(
                "implausible string length {len}"
            )));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| TraceFileError::Corrupt("non-UTF-8 string in manifest".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            codec: Codec::Compact,
            quota: 200_000,
            content_hash: 0xDEAD_BEEF_CAFE_F00D,
            spec: "workload=mcf;cores=2;seed=42".into(),
            interval_instr: 100_000,
            cores: vec![
                CoreManifest {
                    name: "mcf".into(),
                    stream_off: 16,
                    stream_len: 1234,
                    records: 500,
                    instructions: 200_123,
                    intervals: vec![
                        IntervalStats {
                            instructions: 100_000,
                            records: 250,
                            loads: 200,
                            stores: 50,
                            dep_loads: 30,
                            distinct_lines: 240,
                            min_line: 0x100,
                            max_line: 0x9000,
                        },
                        IntervalStats::default(),
                    ],
                },
                CoreManifest {
                    name: "mcf".into(),
                    stream_off: 1250,
                    stream_len: 999,
                    records: 400,
                    instructions: 200_001,
                    intervals: vec![],
                },
            ],
        }
    }

    #[test]
    fn manifest_roundtrips() {
        let m = sample();
        let bytes = m.encode();
        let back = Manifest::decode(&bytes).expect("decodes");
        assert_eq!(back, m);
    }

    #[test]
    fn manifest_truncation_is_an_error() {
        let bytes = sample().encode();
        for cut in [0, 1, 5, 20, bytes.len() - 1] {
            assert!(
                Manifest::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn header_roundtrip_and_bad_magic() {
        let h = encode_header(Codec::ChampSim, 4);
        assert_eq!(decode_header(&h).unwrap(), (Codec::ChampSim, 4));
        let mut bad = h;
        bad[0] = b'X';
        assert!(matches!(decode_header(&bad), Err(TraceFileError::BadMagic)));
        let mut newer = h;
        newer[4] = 99;
        assert!(matches!(
            decode_header(&newer),
            Err(TraceFileError::BadVersion(99))
        ));
    }

    #[test]
    fn tail_roundtrip() {
        let t = encode_tail(0x1234_5678_9ABC, 4096);
        assert_eq!(decode_tail(&t).unwrap(), (0x1234_5678_9ABC, 4096));
        let mut bad = t;
        bad[15] = 0;
        assert!(decode_tail(&bad).is_err());
    }

    #[test]
    fn spec_fields_parse() {
        let m = sample();
        assert_eq!(m.spec_field("workload"), Some("mcf"));
        assert_eq!(m.spec_field("cores"), Some("2"));
        assert_eq!(m.spec_field("seed"), Some("42"));
        assert_eq!(m.spec_field("nope"), None);
    }

    #[test]
    fn bytes_per_instruction_aggregates() {
        let m = sample();
        let expect = (1234 + 999) as f64 / (200_123 + 200_001) as f64;
        assert!((m.bytes_per_instruction() - expect).abs() < 1e-12);
        assert_eq!(m.total_records(), 900);
    }

    #[test]
    fn codec_tags_roundtrip() {
        for c in [Codec::Compact, Codec::ChampSim] {
            assert_eq!(Codec::from_tag(c.tag()).unwrap(), c);
            assert_eq!(Codec::parse(c.name()), Some(c));
        }
        assert!(Codec::from_tag(7).is_err());
        assert!(Codec::parse("gzip").is_none());
    }
}
