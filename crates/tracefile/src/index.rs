//! Directory index: resolve workload identities to trace files.
//!
//! The grid runner (`--trace-dir`) scans a directory of `.ctf` files
//! once, keys each by the generator identity stored in its manifest
//! (`workload`, `cores`, `seed`), and then resolves every grid cell
//! that matches to file-backed replay. Files whose manifests do not
//! carry that identity (recorded from ad-hoc sources) are skipped, not
//! errors; files that fail structural validation are reported.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use crate::format::{Codec, TraceFileError};
use crate::reader::TraceFile;

/// One usable trace file found in a scanned directory.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// Path to the `.ctf` file.
    pub path: PathBuf,
    /// Canonical content hash from the manifest.
    pub content_hash: u64,
    /// Per-core instruction quota the file was recorded with.
    pub quota: u64,
    /// Number of per-core streams.
    pub cores: usize,
    /// Codec the streams are stored in.
    pub codec: Codec,
    /// Workload name from the manifest's generator spec.
    pub workload: String,
    /// Generator seed from the manifest's generator spec.
    pub seed: u64,
}

impl TraceEntry {
    /// The content hash as fixed-width hex, as mixed into spec hashes.
    #[must_use]
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", self.content_hash)
    }
}

/// An index over every valid, workload-identified `.ctf` in a directory.
#[derive(Debug, Default)]
pub struct TraceIndex {
    entries: HashMap<(String, usize, u64), TraceEntry>,
    /// Files that looked like traces but failed to open, with reasons.
    pub rejected: Vec<(PathBuf, String)>,
}

impl TraceIndex {
    /// Scan `dir` (non-recursively) for `*.ctf` files.
    ///
    /// # Errors
    ///
    /// Only if the directory itself cannot be read; unreadable or
    /// unidentified individual files land in `rejected` / are skipped.
    pub fn scan(dir: &Path) -> Result<Self, TraceFileError> {
        let mut idx = TraceIndex::default();
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "ctf"))
            .collect();
        paths.sort(); // deterministic precedence when identities collide
        for path in paths {
            match TraceFile::open(&path) {
                Ok(tf) => {
                    let m = tf.manifest();
                    let identity = (
                        m.spec_field("workload").map(str::to_string),
                        m.spec_field("cores").and_then(|c| c.parse::<usize>().ok()),
                        m.spec_field("seed").and_then(|s| s.parse::<u64>().ok()),
                    );
                    let (Some(workload), Some(cores), Some(seed)) = identity else {
                        continue; // valid file, but not workload-identified
                    };
                    if cores != m.cores.len() {
                        idx.rejected.push((
                            path,
                            format!(
                                "spec says {cores} cores but file holds {} streams",
                                m.cores.len()
                            ),
                        ));
                        continue;
                    }
                    let entry = TraceEntry {
                        path,
                        content_hash: m.content_hash,
                        quota: m.quota,
                        cores,
                        codec: m.codec,
                        workload: workload.clone(),
                        seed,
                    };
                    idx.entries.insert((workload, cores, seed), entry);
                }
                Err(e) => idx.rejected.push((path, e.to_string())),
            }
        }
        Ok(idx)
    }

    /// Resolve a workload identity to its trace file, if recorded here.
    #[must_use]
    pub fn lookup(&self, workload: &str, cores: usize, seed: u64) -> Option<&TraceEntry> {
        self.entries.get(&(workload.to_string(), cores, seed))
    }

    /// Number of indexed trace files.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the scan found no usable traces.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All indexed entries, in no particular order.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::Codec;
    use crate::recorder::record_workload;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("chrome-tracefile-index-tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn scan_indexes_by_workload_identity() {
        let dir = tmpdir("scan");
        record_workload(
            &dir.join("a.ctf"),
            "mcf",
            1,
            7,
            5_000,
            Codec::Compact,
            1_000,
        )
        .unwrap();
        record_workload(
            &dir.join("b.ctf"),
            "lbm",
            2,
            7,
            5_000,
            Codec::ChampSim,
            1_000,
        )
        .unwrap();
        std::fs::write(dir.join("junk.ctf"), b"not a trace").unwrap();
        std::fs::write(dir.join("ignored.txt"), b"whatever").unwrap();

        let idx = TraceIndex::scan(&dir).unwrap();
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.rejected.len(), 1, "junk.ctf is rejected with a reason");
        let e = idx.lookup("mcf", 1, 7).expect("mcf indexed");
        assert_eq!(e.codec, Codec::Compact);
        assert_eq!(e.quota, 5_000);
        assert!(idx.lookup("mcf", 2, 7).is_none(), "core count is identity");
        assert!(idx.lookup("mcf", 1, 8).is_none(), "seed is identity");
    }

    #[test]
    fn missing_directory_is_an_error() {
        let dir = tmpdir("gone").join("nope");
        assert!(TraceIndex::scan(&dir).is_err());
    }
}
