//! # chrome-tracefile — on-disk trace capture and replay
//!
//! The paper's evaluation runs on ChampSim DPC-3 trace files; the rest
//! of this reproduction generates workloads in-process. This crate makes
//! traces durable, exchangeable artifacts:
//!
//! * [`champsim`] — the ChampSim `input_instr` 64-byte binary record
//!   layout (ip, branch bits, destination/source registers, destination/
//!   source memory operands), so recorded traces are readable by stock
//!   ChampSim tooling and decompressed DPC-3 traces are ingestible here.
//! * [`codec`] — a native compact frame format: delta-from-previous +
//!   LEB128 varint encoding of ip/addresses, with non-memory gaps
//!   run-length encoded in the record head (well under 8 bytes per
//!   instruction on the synthetic corpus).
//! * [`recorder`] — captures any [`TraceSource`] (the SPEC-like and GAP
//!   generators, heterogeneous mixes) to a `.ctf` container with a
//!   footer manifest: record counts, per-core instruction quota, content
//!   hash, generator spec and per-interval summary stats.
//! * [`reader`] — a streaming reader with bounded memory: frames are
//!   decoded on a background thread into a double-buffered channel, and
//!   [`reader::FileSource`] implements `chrome_sim::trace::TraceSource`,
//!   so file-backed cores drop into `System` unchanged.
//! * [`index`] — scans a `--trace-dir` and resolves `(workload, cores,
//!   seed)` identities to trace files by content hash, which is what
//!   lets grid cells keep checkpoint identity across trace revisions.
//!
//! # Example
//!
//! ```no_run
//! use chrome_tracefile::{record_workload, Codec, TraceFile};
//!
//! let manifest = record_workload(
//!     "mcf.ctf".as_ref(), "mcf", 2, 42, 200_000, Codec::Compact, 100_000,
//! ).unwrap();
//! let file = TraceFile::open("mcf.ctf".as_ref()).unwrap();
//! assert_eq!(file.manifest().content_hash, manifest.content_hash);
//! let sources = file.sources().unwrap(); // one infinite TraceSource per core
//! assert_eq!(sources.len(), 2);
//! ```

pub mod champsim;
pub mod codec;
pub mod format;
pub mod index;
pub mod reader;
pub mod recorder;

pub use format::{Codec, CoreManifest, IntervalStats, Manifest, TraceFileError};
pub use index::{TraceEntry, TraceIndex};
pub use reader::{FileSource, TraceFile};
pub use recorder::{compute_intervals, record_sources, record_workload};

use chrome_sim::types::TraceRecord;

/// FNV-1a 64-bit over a byte string (stable across platforms/builds).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    chrome_exec::fnv1a64(bytes)
}

/// Fold one decoded record into a running content hash. The hash is
/// computed over the *decoded* record stream in a canonical byte
/// rendering, so both codecs of the same stream agree and `traceinfo
/// --verify` can recompute it from the file alone.
#[must_use]
pub fn hash_record(mut h: u64, rec: &TraceRecord) -> u64 {
    let mut buf = [0u8; 20];
    buf[0..2].copy_from_slice(&rec.nonmem_before.to_le_bytes());
    buf[2..10].copy_from_slice(&rec.pc.to_le_bytes());
    buf[10..18].copy_from_slice(&rec.vaddr.to_le_bytes());
    buf[18] = matches!(rec.kind, chrome_sim::types::AccessKind::Store) as u8;
    buf[19] = rec.dep_prev as u8;
    for &b in &buf {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a offset basis: the seed for [`hash_record`] chains.
pub const HASH_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

#[cfg(test)]
mod tests {
    use super::*;
    use chrome_sim::types::TraceRecord;

    #[test]
    fn hash_is_order_and_field_sensitive() {
        let a = TraceRecord::load(0x400, 0x1000, 3);
        let b = TraceRecord::store(0x400, 0x1000, 3);
        let h1 = hash_record(hash_record(HASH_BASIS, &a), &b);
        let h2 = hash_record(hash_record(HASH_BASIS, &b), &a);
        assert_ne!(h1, h2);
        assert_ne!(hash_record(HASH_BASIS, &a), hash_record(HASH_BASIS, &b));
        let dep = TraceRecord::dep_load(0x400, 0x1000, 3);
        assert_ne!(hash_record(HASH_BASIS, &a), hash_record(HASH_BASIS, &dep));
    }
}
