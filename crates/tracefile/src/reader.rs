//! Reading `.ctf` files: validation, full decode, and the streaming
//! [`FileSource`] that drops into `System` as a `TraceSource`.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{sync_channel, Receiver};
use std::thread;

use chrome_sim::trace::TraceSource;
use chrome_sim::types::TraceRecord;

use crate::champsim;
use crate::codec::{decode_frame_header, decode_frame_payload, FRAME_HEADER_LEN};
use crate::format::{
    decode_header, decode_tail, Codec, Manifest, TraceFileError, HEADER_LEN, TAIL_LEN,
};
use crate::{hash_record, HASH_BASIS};

/// An opened, structurally validated `.ctf` trace file.
///
/// Opening reads and checks the header, the footer tail and the
/// manifest, and cross-checks stream bounds — corrupt or truncated
/// files fail here with a descriptive [`TraceFileError`], never a panic.
/// Stream payloads are *not* decoded at open time; use
/// [`TraceFile::verify`] for a full decode + content-hash check.
#[derive(Debug)]
pub struct TraceFile {
    path: PathBuf,
    manifest: Manifest,
}

impl TraceFile {
    /// Open and validate the container structure of `path`.
    pub fn open(path: &Path) -> Result<Self, TraceFileError> {
        let mut f = File::open(path)?;
        let len = f.metadata()?.len();
        if len < HEADER_LEN + TAIL_LEN {
            return Err(TraceFileError::Truncated("file shorter than header + tail"));
        }
        let mut header = [0u8; HEADER_LEN as usize];
        f.read_exact(&mut header)?;
        let (codec, n_cores) = decode_header(&header)?;
        let mut tail = [0u8; TAIL_LEN as usize];
        f.seek(SeekFrom::End(-(TAIL_LEN as i64)))?;
        f.read_exact(&mut tail)?;
        let (moff, mlen) = decode_tail(&tail)?;
        if moff
            .checked_add(u64::from(mlen))
            .is_none_or(|end| end != len - TAIL_LEN)
            || moff < HEADER_LEN
        {
            return Err(TraceFileError::Corrupt(
                "manifest offset/length disagree with file size".into(),
            ));
        }
        f.seek(SeekFrom::Start(moff))?;
        let mut mbytes = vec![0u8; mlen as usize];
        f.read_exact(&mut mbytes)?;
        let manifest = Manifest::decode(&mbytes)?;
        if manifest.codec != codec || manifest.cores.len() != n_cores as usize {
            return Err(TraceFileError::Corrupt(
                "header and manifest disagree on codec or core count".into(),
            ));
        }
        let mut expect = HEADER_LEN;
        for (i, core) in manifest.cores.iter().enumerate() {
            if core.stream_off != expect {
                return Err(TraceFileError::Corrupt(format!(
                    "core {i} stream offset {} (expected {expect})",
                    core.stream_off
                )));
            }
            expect = core
                .stream_off
                .checked_add(core.stream_len)
                .ok_or_else(|| TraceFileError::Corrupt("stream length overflow".into()))?;
            if manifest.codec == Codec::ChampSim
                && core.stream_len % champsim::INSTR_LEN as u64 != 0
            {
                return Err(TraceFileError::Corrupt(format!(
                    "core {i} ChampSim stream is not a whole number of records"
                )));
            }
        }
        if expect != moff {
            return Err(TraceFileError::Corrupt(
                "streams do not end at the manifest".into(),
            ));
        }
        // Interval-stat consistency: a zero interval length would make
        // every downstream feature vector empty (division by the
        // interval length, position reconstruction), so reject it here
        // rather than let sampling silently select nothing. Recorded
        // interval stats, when present, must tile the stream exactly;
        // an empty interval list is legal (pre-interval-stats files)
        // and handled by [`TraceFile::intervals_for`] recomputation.
        if manifest.interval_instr == 0 {
            return Err(TraceFileError::Corrupt(
                "manifest interval length is zero".into(),
            ));
        }
        for (i, core) in manifest.cores.iter().enumerate() {
            if core.intervals.is_empty() {
                continue;
            }
            let instr: u64 = core.intervals.iter().map(|iv| iv.instructions).sum();
            let recs: u64 = core.intervals.iter().map(|iv| iv.records).sum();
            if instr != core.instructions || recs != core.records {
                return Err(TraceFileError::Corrupt(format!(
                    "core {i} interval stats sum to {instr} instructions / {recs} records, \
                     but the manifest totals are {} / {}",
                    core.instructions, core.records
                )));
            }
        }
        Ok(TraceFile {
            path: path.to_path_buf(),
            manifest,
        })
    }

    /// The footer manifest.
    #[must_use]
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Path this file was opened from.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Fully decode one core's stream (validation path; bounded-memory
    /// replay goes through [`TraceFile::source`] instead).
    pub fn decode_core(&self, core: usize) -> Result<Vec<TraceRecord>, TraceFileError> {
        let cm = self
            .manifest
            .cores
            .get(core)
            .ok_or_else(|| TraceFileError::Corrupt(format!("no core {core} in this file")))?;
        let mut f = File::open(&self.path)?;
        f.seek(SeekFrom::Start(cm.stream_off))?;
        let mut bytes = vec![0u8; cm.stream_len as usize];
        f.read_exact(&mut bytes)?;
        let records = match self.manifest.codec {
            Codec::Compact => crate::codec::decode_stream(&bytes)?,
            Codec::ChampSim => champsim::decode_stream(&bytes)?,
        };
        if records.len() as u64 != cm.records {
            return Err(TraceFileError::Corrupt(format!(
                "core {core} decodes to {} records, manifest says {}",
                records.len(),
                cm.records
            )));
        }
        Ok(records)
    }

    /// Decode every stream and check record counts, instruction counts
    /// and the content hash against the manifest.
    pub fn verify(&self) -> Result<(), TraceFileError> {
        let mut hash = HASH_BASIS;
        for (i, cm) in self.manifest.cores.iter().enumerate() {
            let records = self.decode_core(i)?;
            let instr: u64 = records.iter().map(|r| 1 + u64::from(r.nonmem_before)).sum();
            if instr != cm.instructions {
                return Err(TraceFileError::Corrupt(format!(
                    "core {i} covers {instr} instructions, manifest says {}",
                    cm.instructions
                )));
            }
            for rec in &records {
                hash = hash_record(hash, rec);
            }
        }
        if hash != self.manifest.content_hash {
            return Err(TraceFileError::HashMismatch {
                expected: self.manifest.content_hash,
                actual: hash,
            });
        }
        Ok(())
    }

    /// Interval stats for one core: the manifest's recorded stats when
    /// present, otherwise recomputed from a full decode of the stream
    /// at the manifest's interval length (files recorded before
    /// interval stats existed carry an empty list).
    pub fn intervals_for(
        &self,
        core: usize,
    ) -> Result<Vec<crate::format::IntervalStats>, TraceFileError> {
        let cm = self
            .manifest
            .cores
            .get(core)
            .ok_or_else(|| TraceFileError::Corrupt(format!("no core {core} in this file")))?;
        if !cm.intervals.is_empty() {
            return Ok(cm.intervals.clone());
        }
        let records = self.decode_core(core)?;
        Ok(crate::recorder::compute_intervals(
            &records,
            self.manifest.interval_instr,
        ))
    }

    /// A streaming, infinite [`TraceSource`] over one core's stream.
    /// Frames are decoded on a background thread into a bounded channel
    /// (double-buffered: one batch in flight, one being consumed), so
    /// memory stays constant regardless of trace length; at end of
    /// stream the reader wraps to the start, matching the
    /// championship-simulator practice of replaying traces until every
    /// core meets its quota.
    pub fn source(&self, core: usize) -> Result<FileSource, TraceFileError> {
        let cm = self
            .manifest
            .cores
            .get(core)
            .ok_or_else(|| TraceFileError::Corrupt(format!("no core {core} in this file")))?;
        if cm.records == 0 {
            return Err(TraceFileError::Corrupt(format!(
                "core {core} stream holds no records"
            )));
        }
        // the thread gets its own handle so concurrent per-core sources
        // never contend on a shared seek position
        let file = File::open(&self.path)?;
        let codec = self.manifest.codec;
        let (off, len) = (cm.stream_off, cm.stream_len);
        let (tx, rx) = sync_channel::<Result<Vec<TraceRecord>, TraceFileError>>(1);
        let path = self.path.clone();
        thread::Builder::new()
            .name(format!("ctf-read-{core}"))
            .spawn(move || {
                let mut f = file;
                loop {
                    match stream_pass(&mut f, codec, off, len, &tx) {
                        Ok(true) => continue, // wrapped; start the next pass
                        Ok(false) => return,  // receiver dropped
                        Err(e) => {
                            let _ = tx.send(Err(e));
                            return;
                        }
                    }
                }
            })
            .map_err(|e| {
                TraceFileError::Io(std::io::Error::other(format!(
                    "spawning reader thread for {path:?}: {e}"
                )))
            })?;
        Ok(FileSource {
            rx,
            buf: Vec::new(),
            idx: 0,
            name: cm.name.clone(),
        })
    }

    /// One [`FileSource`] per core, boxed for `System`.
    pub fn sources(&self) -> Result<Vec<Box<dyn TraceSource>>, TraceFileError> {
        (0..self.manifest.cores.len())
            .map(|i| Ok(Box::new(self.source(i)?) as Box<dyn TraceSource>))
            .collect()
    }
}

/// One full pass over a core's stream, sending decoded batches. Returns
/// `Ok(true)` to wrap around, `Ok(false)` when the receiver hung up.
fn stream_pass(
    f: &mut File,
    codec: Codec,
    off: u64,
    len: u64,
    tx: &std::sync::mpsc::SyncSender<Result<Vec<TraceRecord>, TraceFileError>>,
) -> Result<bool, TraceFileError> {
    f.seek(SeekFrom::Start(off))?;
    let mut remaining = len;
    match codec {
        Codec::Compact => {
            while remaining > 0 {
                if remaining < FRAME_HEADER_LEN as u64 {
                    return Err(TraceFileError::Truncated("frame header"));
                }
                let mut header = [0u8; FRAME_HEADER_LEN];
                f.read_exact(&mut header)?;
                let (payload_len, nrec) = decode_frame_header(&header)?;
                remaining -= FRAME_HEADER_LEN as u64;
                if (payload_len as u64) > remaining {
                    return Err(TraceFileError::Truncated("frame payload"));
                }
                let mut payload = vec![0u8; payload_len];
                f.read_exact(&mut payload)?;
                remaining -= payload_len as u64;
                let mut batch = Vec::new();
                decode_frame_payload(&payload, nrec, &mut batch)?;
                if !batch.is_empty() && tx.send(Ok(batch)).is_err() {
                    return Ok(false);
                }
            }
        }
        Codec::ChampSim => {
            const CHUNK_INSTRS: u64 = 4096;
            let mut dec = champsim::Decoder::new();
            let mut chunk = vec![0u8; (CHUNK_INSTRS * champsim::INSTR_LEN as u64) as usize];
            while remaining > 0 {
                let take = remaining.min(chunk.len() as u64) as usize;
                f.read_exact(&mut chunk[..take])?;
                remaining -= take as u64;
                let mut batch = Vec::new();
                for instr in chunk[..take].chunks_exact(champsim::INSTR_LEN) {
                    dec.push_instr(instr, &mut batch);
                }
                if !batch.is_empty() && tx.send(Ok(batch)).is_err() {
                    return Ok(false);
                }
            }
        }
    }
    Ok(true)
}

/// A file-backed, infinite trace source for one core. Implements
/// [`TraceSource`], so a file-backed core drops into `System` unchanged.
///
/// # Panics
///
/// [`FileSource::next_record`] panics (with the underlying
/// [`TraceFileError`] message) if the stream turns out to be corrupt
/// mid-replay or the reader thread dies — `TraceSource` has no error
/// channel. Structural corruption is caught earlier, at
/// [`TraceFile::open`]; payload corruption is caught by
/// [`TraceFile::verify`], which `traceinfo` runs.
#[derive(Debug)]
pub struct FileSource {
    rx: Receiver<Result<Vec<TraceRecord>, TraceFileError>>,
    buf: Vec<TraceRecord>,
    idx: usize,
    name: String,
}

impl TraceSource for FileSource {
    fn next_record(&mut self) -> TraceRecord {
        while self.idx >= self.buf.len() {
            match self.rx.recv() {
                Ok(Ok(batch)) => {
                    self.buf = batch;
                    self.idx = 0;
                }
                Ok(Err(e)) => panic!("trace replay failed: {e}"),
                Err(_) => panic!("trace reader thread for {:?} terminated", self.name),
            }
        }
        let rec = self.buf[self.idx];
        self.idx += 1;
        rec
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::record_sources;
    use chrome_sim::trace::{StridedSource, TraceSource};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("chrome-tracefile-reader-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn record_strided(name: &str, codec: Codec) -> PathBuf {
        let path = tmp(name);
        let sources: Vec<Box<dyn TraceSource>> =
            vec![Box::new(StridedSource::new(0x4000, 64, 1 << 14, 2))];
        record_sources(&path, sources, "test", 30_000, codec, 10_000).unwrap();
        path
    }

    #[test]
    fn open_verify_and_stream_match_generator() {
        for codec in [Codec::Compact, Codec::ChampSim] {
            let path = record_strided(&format!("ok-{}.ctf", codec.name()), codec);
            let tf = TraceFile::open(&path).unwrap();
            tf.verify().unwrap();
            let decoded = tf.decode_core(0).unwrap();
            let mut live = StridedSource::new(0x4000, 64, 1 << 14, 2);
            for (i, rec) in decoded.iter().enumerate() {
                assert_eq!(*rec, live.next_record(), "record {i} ({})", codec.name());
            }
            // the streaming source replays the same prefix, then wraps
            let mut src = tf.source(0).unwrap();
            for (i, rec) in decoded.iter().enumerate() {
                assert_eq!(src.next_record(), *rec, "stream record {i}");
            }
            assert_eq!(src.next_record(), decoded[0], "wraparound restarts");
        }
    }

    #[test]
    fn truncated_file_is_a_clean_error() {
        let path = record_strided("trunc.ctf", Codec::Compact);
        let bytes = std::fs::read(&path).unwrap();
        for cut in [0, 3, 15, 40, bytes.len() / 2, bytes.len() - 1] {
            let cut_path = tmp(&format!("trunc-{cut}.ctf"));
            std::fs::write(&cut_path, &bytes[..cut]).unwrap();
            assert!(TraceFile::open(&cut_path).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bad_magic_and_flipped_payload_are_errors() {
        let path = record_strided("corrupt.ctf", Codec::Compact);
        let bytes = std::fs::read(&path).unwrap();

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'Z';
        let p = tmp("bad-magic.ctf");
        std::fs::write(&p, &bad_magic).unwrap();
        assert!(matches!(TraceFile::open(&p), Err(TraceFileError::BadMagic)));

        // flip a payload byte: structure still parses, hash must not
        let mut flipped = bytes;
        let mid = HEADER_LEN as usize + 64;
        flipped[mid] ^= 0x40;
        let p = tmp("flipped.ctf");
        std::fs::write(&p, &flipped).unwrap();
        // an Err from open is also acceptable: the flip hit structure
        if let Ok(tf) = TraceFile::open(&p) {
            assert!(tf.verify().is_err(), "flipped payload must fail verify");
        }
    }

    #[test]
    fn out_of_range_core_is_an_error() {
        let path = record_strided("range.ctf", Codec::Compact);
        let tf = TraceFile::open(&path).unwrap();
        assert!(tf.source(1).is_err());
        assert!(tf.decode_core(9).is_err());
    }

    #[test]
    fn dropping_the_source_stops_the_reader_thread() {
        let path = record_strided("drop.ctf", Codec::Compact);
        let tf = TraceFile::open(&path).unwrap();
        let mut src = tf.source(0).unwrap();
        let _ = src.next_record();
        drop(src); // must not hang or leak a blocked thread forever
    }
}
