//! The recorder: capture trace sources to a `.ctf` file.
//!
//! Recording streams frames straight to disk in one pass (bounded
//! memory), accumulating per-interval summary stats and the content
//! hash on the fly, then writes the footer manifest last.

use std::collections::HashSet;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use chrome_sim::trace::TraceSource;
use chrome_sim::types::{AccessKind, TraceRecord, LINE_SHIFT};

use crate::codec::{encode_frame, FRAME_RECORDS};
use crate::format::{
    encode_header, encode_tail, Codec, CoreManifest, IntervalStats, Manifest, TraceFileError,
    HEADER_LEN,
};
use crate::{champsim, hash_record, HASH_BASIS};

/// Default interval length (instructions) for the per-interval summary
/// stats — the paper-standard 100K-instruction granularity.
pub const DEFAULT_INTERVAL_INSTR: u64 = 100_000;

/// Running interval-stat accumulator for one core.
struct IntervalAcc {
    interval_instr: u64,
    cur: IntervalStats,
    lines: HashSet<u64>,
    done: Vec<IntervalStats>,
}

impl IntervalAcc {
    fn new(interval_instr: u64) -> Self {
        IntervalAcc {
            interval_instr,
            cur: fresh_interval(),
            lines: HashSet::new(),
            done: Vec::new(),
        }
    }

    fn push(&mut self, rec: &TraceRecord) {
        let line = rec.vaddr >> LINE_SHIFT;
        self.cur.instructions += 1 + u64::from(rec.nonmem_before);
        self.cur.records += 1;
        match rec.kind {
            AccessKind::Load => self.cur.loads += 1,
            AccessKind::Store => self.cur.stores += 1,
        }
        self.cur.dep_loads += u64::from(rec.dep_prev);
        self.lines.insert(line);
        self.cur.min_line = self.cur.min_line.min(line);
        self.cur.max_line = self.cur.max_line.max(line);
        if self.cur.instructions >= self.interval_instr {
            self.close();
        }
    }

    fn close(&mut self) {
        if self.cur.records == 0 && self.cur.instructions == 0 {
            return;
        }
        self.cur.distinct_lines = self.lines.len() as u64;
        self.done.push(self.cur);
        self.cur = fresh_interval();
        self.lines.clear();
    }

    fn finish(mut self) -> Vec<IntervalStats> {
        self.close();
        self.done
    }
}

fn fresh_interval() -> IntervalStats {
    IntervalStats {
        min_line: u64::MAX,
        ..IntervalStats::default()
    }
}

/// Recompute interval stats from an already-decoded record stream —
/// the same accumulator the recorder runs while capturing, exposed so
/// files recorded before interval stats existed (or with a different
/// interval length) can be clustered too. The leading `dep_prev`
/// canonicalization is applied, matching what the recorder hashed.
#[must_use]
pub fn compute_intervals(records: &[TraceRecord], interval_instr: u64) -> Vec<IntervalStats> {
    let mut acc = IntervalAcc::new(interval_instr.max(1));
    for (i, rec) in records.iter().enumerate() {
        let mut rec = *rec;
        if i == 0 {
            rec.dep_prev = false;
        }
        acc.push(&rec);
    }
    acc.finish()
}

/// Byte-counting writer so stream offsets fall out of the write path.
struct CountingWriter<W: Write> {
    inner: W,
    written: u64,
}

impl<W: Write> CountingWriter<W> {
    fn put(&mut self, bytes: &[u8]) -> Result<(), TraceFileError> {
        self.inner.write_all(bytes)?;
        self.written += bytes.len() as u64;
        Ok(())
    }
}

/// Record `sources` (one per core) to `path` until every core's stream
/// covers at least `quota` instructions. Returns the manifest that was
/// written into the file's footer.
///
/// The canonical record stream is hashed as it is captured; a leading
/// `dep_prev` (which has nothing to depend on and is a timing no-op) is
/// canonicalized to `false` so both codecs of the same workload produce
/// the same content hash.
///
/// # Errors
///
/// I/O failures, a zero `quota`/`interval_instr`, or (ChampSim codec
/// only) a record at address 0.
pub fn record_sources(
    path: &Path,
    mut sources: Vec<Box<dyn TraceSource>>,
    spec: &str,
    quota: u64,
    codec: Codec,
    interval_instr: u64,
) -> Result<Manifest, TraceFileError> {
    if quota == 0 || interval_instr == 0 {
        return Err(TraceFileError::Corrupt(
            "quota and interval length must be positive".into(),
        ));
    }
    if sources.is_empty() || sources.len() > 255 {
        return Err(TraceFileError::Corrupt(format!(
            "recorder needs 1..=255 sources, got {}",
            sources.len()
        )));
    }
    let file = File::create(path)?;
    let mut w = CountingWriter {
        inner: BufWriter::new(file),
        written: 0,
    };
    w.put(&encode_header(codec, sources.len() as u8))?;
    debug_assert_eq!(w.written, HEADER_LEN);

    let mut hash = HASH_BASIS;
    let mut cores = Vec::with_capacity(sources.len());
    for src in &mut sources {
        let stream_off = w.written;
        let mut acc = IntervalAcc::new(interval_instr);
        let mut records = 0u64;
        let mut instructions = 0u64;
        let mut frame: Vec<TraceRecord> = Vec::with_capacity(FRAME_RECORDS);
        let mut champ_enc = champsim::Encoder::new();
        let mut champ_buf: Vec<u8> = Vec::with_capacity(64 * 1024);
        while instructions < quota {
            let mut rec = src.next_record();
            if records == 0 {
                rec.dep_prev = false; // leading dependence is a timing no-op
            }
            hash = hash_record(hash, &rec);
            acc.push(&rec);
            records += 1;
            instructions += 1 + u64::from(rec.nonmem_before);
            match codec {
                Codec::Compact => {
                    frame.push(rec);
                    if frame.len() >= FRAME_RECORDS {
                        w.put(&encode_frame(&frame))?;
                        frame.clear();
                    }
                }
                Codec::ChampSim => {
                    champ_enc.push(&rec, &mut champ_buf)?;
                    if champ_buf.len() >= 64 * 1024 {
                        w.put(&champ_buf)?;
                        champ_buf.clear();
                    }
                }
            }
        }
        match codec {
            Codec::Compact => {
                if !frame.is_empty() {
                    w.put(&encode_frame(&frame))?;
                }
            }
            Codec::ChampSim => {
                champ_enc.flush(&mut champ_buf);
                w.put(&champ_buf)?;
            }
        }
        cores.push(CoreManifest {
            name: src.name().to_string(),
            stream_off,
            stream_len: w.written - stream_off,
            records,
            instructions,
            intervals: acc.finish(),
        });
    }

    let manifest = Manifest {
        codec,
        quota,
        content_hash: hash,
        spec: spec.to_string(),
        interval_instr,
        cores,
    };
    let manifest_off = w.written;
    let bytes = manifest.encode();
    w.put(&bytes)?;
    w.put(&encode_tail(manifest_off, bytes.len() as u32))?;
    w.inner.flush()?;
    Ok(manifest)
}

/// Record a named workload (or `+`-joined heterogeneous mix) built from
/// the `chrome-traces` registry, using the same construction the grid
/// runner uses: a homogeneous mix of `cores` copies for a plain name,
/// [`chrome_traces::mix::build_mix`] for a `+`-joined one.
///
/// # Errors
///
/// [`TraceFileError::UnknownWorkload`] for unregistered names, plus
/// everything [`record_sources`] can report.
pub fn record_workload(
    path: &Path,
    workload: &str,
    cores: usize,
    seed: u64,
    quota: u64,
    codec: Codec,
    interval_instr: u64,
) -> Result<Manifest, TraceFileError> {
    let sources = build_workload_sources(workload, cores, seed)?;
    let spec = workload_spec(workload, cores, seed);
    record_sources(path, sources, &spec, quota, codec, interval_instr)
}

/// The canonical generator-spec string stored in recorded manifests.
#[must_use]
pub fn workload_spec(workload: &str, cores: usize, seed: u64) -> String {
    format!("workload={workload};cores={cores};seed={seed}")
}

/// Build the per-core sources for a workload identity exactly as the
/// grid runner does (shared by the recorder and `traceinfo
/// --cross-check`).
pub fn build_workload_sources(
    workload: &str,
    cores: usize,
    seed: u64,
) -> Result<Vec<Box<dyn TraceSource>>, TraceFileError> {
    let sources = if workload.contains('+') {
        let names: Vec<&str> = workload.split('+').collect();
        if names.len() != cores {
            return Err(TraceFileError::Corrupt(format!(
                "mix {workload} names {} cores, asked for {cores}",
                names.len()
            )));
        }
        chrome_traces::mix::build_mix(&names, seed)
    } else {
        chrome_traces::mix::homogeneous(workload, cores, seed)
    };
    sources.ok_or_else(|| TraceFileError::UnknownWorkload(workload.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chrome_sim::trace::StridedSource;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("chrome-tracefile-recorder-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn records_cover_the_quota() {
        let path = tmp("quota.ctf");
        let sources: Vec<Box<dyn TraceSource>> =
            vec![Box::new(StridedSource::new(0x1000, 64, 1 << 16, 3))];
        let m = record_sources(&path, sources, "test", 10_000, Codec::Compact, 2_000).unwrap();
        assert_eq!(m.cores.len(), 1);
        assert!(m.cores[0].instructions >= 10_000);
        // each record covers 4 instructions; overshoot is at most one record
        assert!(m.cores[0].instructions < 10_000 + 4);
        assert!(!m.cores[0].intervals.is_empty());
        let iv_sum: u64 = m.cores[0].intervals.iter().map(|i| i.instructions).sum();
        assert_eq!(iv_sum, m.cores[0].instructions);
        let rec_sum: u64 = m.cores[0].intervals.iter().map(|i| i.records).sum();
        assert_eq!(rec_sum, m.cores[0].records);
    }

    #[test]
    fn both_codecs_hash_identically() {
        let mk = || -> Vec<Box<dyn TraceSource>> {
            vec![Box::new(StridedSource::new(0x1000, 64, 1 << 14, 2))]
        };
        let a = record_sources(&tmp("h1.ctf"), mk(), "t", 5_000, Codec::Compact, 1_000).unwrap();
        let b = record_sources(&tmp("h2.ctf"), mk(), "t", 5_000, Codec::ChampSim, 1_000).unwrap();
        assert_eq!(a.content_hash, b.content_hash);
        assert!(a.total_stream_bytes() < b.total_stream_bytes());
    }

    #[test]
    fn named_workload_records() {
        let path = tmp("mcf.ctf");
        let m = record_workload(&path, "mcf", 2, 42, 20_000, Codec::Compact, 5_000).unwrap();
        assert_eq!(m.cores.len(), 2);
        assert_eq!(m.spec_field("workload"), Some("mcf"));
        assert_eq!(m.spec_field("seed"), Some("42"));
        assert!(record_workload(&tmp("x.ctf"), "nope", 1, 1, 100, Codec::Compact, 100).is_err());
    }

    #[test]
    fn zero_quota_is_rejected() {
        let sources: Vec<Box<dyn TraceSource>> = vec![Box::new(StridedSource::new(0, 64, 1024, 0))];
        assert!(record_sources(&tmp("z.ctf"), sources, "t", 0, Codec::Compact, 100).is_err());
    }
}
