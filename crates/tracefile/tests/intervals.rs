//! Property tests for footer interval stats: per-core interval sums
//! must exactly equal the manifest totals for every codec, including
//! when the recorded source itself wraps around (re-recording from a
//! `FileSource`), and structurally inconsistent interval metadata must
//! fail at open.

use std::path::PathBuf;

use chrome_sim::rng::SmallRng;
use chrome_sim::trace::TraceSource;
use chrome_sim::types::{AccessKind, TraceRecord};
use chrome_tracefile::recorder::record_sources;
use chrome_tracefile::{
    codec, compute_intervals, format, Codec, CoreManifest, IntervalStats, Manifest, TraceFile,
};

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chrome-intervals-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A random-but-plausible stream (addresses avoid 0 for the ChampSim
/// layout; the leading record never carries `dep_prev`).
fn random_stream(rng: &mut SmallRng, len: usize) -> Vec<TraceRecord> {
    let mut pc = 0x400_000u64;
    let mut vaddr = 0x10_0000u64;
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        pc = pc.wrapping_add(4 + (rng.next_u64() % 32));
        vaddr = match rng.next_u64() % 3 {
            0 => vaddr.wrapping_add(64),
            1 => rng.next_u64() | 1,
            _ => vaddr.wrapping_sub(8),
        };
        if vaddr == 0 {
            vaddr = 0x40;
        }
        out.push(TraceRecord {
            nonmem_before: (rng.next_u64() % 50) as u16,
            pc,
            vaddr,
            kind: if rng.next_u64().is_multiple_of(3) {
                AccessKind::Store
            } else {
                AccessKind::Load
            },
            dep_prev: i > 0 && rng.next_u64().is_multiple_of(5),
        });
    }
    out
}

/// An infinite in-memory source that replays `recs` with wraparound —
/// the same contract a `FileSource` provides.
struct Replay {
    recs: Vec<TraceRecord>,
    i: usize,
}

impl TraceSource for Replay {
    fn next_record(&mut self) -> TraceRecord {
        let r = self.recs[self.i % self.recs.len()];
        self.i += 1;
        r
    }
    fn name(&self) -> &str {
        "replay"
    }
}

fn assert_intervals_consistent(tf: &TraceFile, label: &str) {
    let m = tf.manifest();
    for (i, core) in m.cores.iter().enumerate() {
        assert!(
            !core.intervals.is_empty(),
            "{label}: core {i} recorded no intervals"
        );
        let instr: u64 = core.intervals.iter().map(|iv| iv.instructions).sum();
        let recs: u64 = core.intervals.iter().map(|iv| iv.records).sum();
        assert_eq!(instr, core.instructions, "{label}: core {i} instr sum");
        assert_eq!(recs, core.records, "{label}: core {i} record sum");
        for (j, iv) in core.intervals.iter().enumerate() {
            assert_eq!(
                iv.loads + iv.stores,
                iv.records,
                "{label}: core {i} interval {j} load/store split"
            );
            assert!(iv.dep_loads <= iv.records);
            if j + 1 < core.intervals.len() {
                // every interval except the trailing partial one spans
                // at least the configured length (overshoot is bounded
                // by one record's non-memory run)
                assert!(
                    iv.instructions >= m.interval_instr,
                    "{label}: core {i} interval {j} shorter than {}",
                    m.interval_instr
                );
            }
        }
    }
}

#[test]
fn interval_sums_match_totals_for_all_codecs() {
    let mut rng = SmallRng::seed_from_u64(0x51AB);
    for case in 0..8 {
        let n_cores = 1 + (rng.next_u64() % 3) as usize;
        let interval = 500 + rng.next_u64() % 4_000;
        let quota = 5_000 + rng.next_u64() % 30_000;
        for codec in [Codec::Compact, Codec::ChampSim] {
            let sources: Vec<Box<dyn TraceSource>> = (0..n_cores)
                .map(|_| {
                    let len = 200 + (rng.next_u64() % 2_000) as usize;
                    Box::new(Replay {
                        recs: random_stream(&mut rng, len),
                        i: 0,
                    }) as Box<dyn TraceSource>
                })
                .collect();
            let path = tmpdir().join(format!("sum-{case}-{}.ctf", codec.name()));
            record_sources(&path, sources, "test", quota, codec, interval).unwrap();
            let tf = TraceFile::open(&path).unwrap();
            let label = format!("case {case} codec {}", codec.name());
            assert_intervals_consistent(&tf, &label);
        }
    }
}

#[test]
fn wraparound_rerecording_keeps_sums_exact() {
    // Record a short trace, then re-record *from its own FileSource*
    // with a quota several times the content: the reader wraps, and the
    // interval sums of the re-recording must still tile exactly.
    let mut rng = SmallRng::seed_from_u64(0x1007);
    let base = tmpdir().join("wrap-base.ctf");
    let sources: Vec<Box<dyn TraceSource>> = vec![Box::new(Replay {
        recs: random_stream(&mut rng, 400),
        i: 0,
    })];
    let m0 = record_sources(&base, sources, "test", 4_000, Codec::Compact, 1_000).unwrap();
    let tf0 = TraceFile::open(&base).unwrap();
    for codec in [Codec::Compact, Codec::ChampSim] {
        let rerec = tmpdir().join(format!("wrap-re-{}.ctf", codec.name()));
        let wrapping: Vec<Box<dyn TraceSource>> = vec![Box::new(tf0.source(0).unwrap())];
        let quota = m0.cores[0].instructions * 3 + 777; // force >3 wraps
        record_sources(&rerec, wrapping, "test", quota, codec, 1_500).unwrap();
        let tf = TraceFile::open(&rerec).unwrap();
        assert!(tf.manifest().cores[0].instructions >= quota);
        assert_intervals_consistent(&tf, &format!("wrap {}", codec.name()));
    }
}

#[test]
fn recomputed_intervals_match_recorded_ones() {
    let mut rng = SmallRng::seed_from_u64(0xFACE);
    let path = tmpdir().join("recompute.ctf");
    let sources: Vec<Box<dyn TraceSource>> = vec![Box::new(Replay {
        recs: random_stream(&mut rng, 900),
        i: 0,
    })];
    record_sources(&path, sources, "test", 20_000, Codec::Compact, 2_500).unwrap();
    let tf = TraceFile::open(&path).unwrap();
    let decoded = tf.decode_core(0).unwrap();
    let recomputed = compute_intervals(&decoded, tf.manifest().interval_instr);
    assert_eq!(recomputed, tf.manifest().cores[0].intervals);
    assert_eq!(tf.intervals_for(0).unwrap(), recomputed);
}

/// Hand-assemble a container around `manifest` (one compact-codec core
/// stream of `recs`) so invalid manifests that the recorder refuses to
/// produce can still be exercised against `TraceFile::open`.
fn write_container(path: &PathBuf, recs: &[TraceRecord], manifest: &Manifest) {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&format::encode_header(Codec::Compact, 1));
    bytes.extend_from_slice(&codec::encode_frame(recs));
    let moff = bytes.len() as u64;
    let mbytes = manifest.encode();
    bytes.extend_from_slice(&mbytes);
    bytes.extend_from_slice(&format::encode_tail(moff, mbytes.len() as u32));
    std::fs::write(path, &bytes).unwrap();
}

fn one_core_manifest(recs: &[TraceRecord], stream_len: u64, interval_instr: u64) -> Manifest {
    let instructions: u64 = recs.iter().map(|r| 1 + u64::from(r.nonmem_before)).sum();
    Manifest {
        codec: Codec::Compact,
        quota: instructions,
        content_hash: 0, // open does not rehash; verify would
        spec: String::new(),
        interval_instr,
        cores: vec![CoreManifest {
            name: "hand".into(),
            stream_off: format::HEADER_LEN,
            stream_len,
            records: recs.len() as u64,
            instructions,
            intervals: compute_intervals(recs, interval_instr.max(1)),
        }],
    }
}

#[test]
fn zero_interval_length_fails_to_open() {
    let recs = random_stream(&mut SmallRng::seed_from_u64(7), 50);
    let stream_len = codec::encode_frame(&recs).len() as u64;
    let mut manifest = one_core_manifest(&recs, stream_len, 1_000);
    manifest.interval_instr = 0;
    let path = tmpdir().join("zero-interval.ctf");
    write_container(&path, &recs, &manifest);
    let err = TraceFile::open(&path).unwrap_err();
    assert!(
        err.to_string().contains("interval length is zero"),
        "unexpected error: {err}"
    );
}

#[test]
fn inconsistent_interval_sums_fail_to_open() {
    let recs = random_stream(&mut SmallRng::seed_from_u64(8), 50);
    let stream_len = codec::encode_frame(&recs).len() as u64;
    let mut manifest = one_core_manifest(&recs, stream_len, 1_000);
    manifest.cores[0].intervals[0].instructions += 1;
    let path = tmpdir().join("bad-sums.ctf");
    write_container(&path, &recs, &manifest);
    let err = TraceFile::open(&path).unwrap_err();
    assert!(
        err.to_string().contains("interval stats sum"),
        "unexpected error: {err}"
    );
}

#[test]
fn empty_interval_list_opens_and_recomputes() {
    // pre-interval-stats files carry no intervals: open succeeds and
    // `intervals_for` recomputes them from the stream
    let recs = random_stream(&mut SmallRng::seed_from_u64(9), 300);
    let stream_len = codec::encode_frame(&recs).len() as u64;
    let mut manifest = one_core_manifest(&recs, stream_len, 1_000);
    let expect: Vec<IntervalStats> = std::mem::take(&mut manifest.cores[0].intervals);
    let path = tmpdir().join("no-intervals.ctf");
    write_container(&path, &recs, &manifest);
    let tf = TraceFile::open(&path).unwrap();
    assert!(tf.manifest().cores[0].intervals.is_empty());
    assert_eq!(tf.intervals_for(0).unwrap(), expect);
}
