//! Record → replay equivalence: for every registered workload, a system
//! fed from a freshly recorded `.ctf` file produces **byte-identical**
//! `SimResults` and epoch telemetry to one fed from the live generator,
//! under both scheduling kernels.
//!
//! The recording quota must cover everything the simulation will
//! consume (cores run ahead of retirement by the ROB window, and in
//! multi-core systems early finishers keep running to preserve
//! contention); with enough margin the file source never wraps, so the
//! replayed record sequence is exactly the generator's prefix.

use std::path::PathBuf;

use chrome_sim::{Kernel, SimConfig, SimResults, System};
use chrome_telemetry::{EpochSeries, TelemetryConfig, TelemetrySink};
use chrome_tracefile::recorder::{build_workload_sources, record_workload};
use chrome_tracefile::{Codec, TraceFile};

const INSTRUCTIONS: u64 = 3_000;
const WARMUP: u64 = 300;

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chrome-replay-equiv-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_system(
    traces: Vec<Box<dyn chrome_sim::trace::TraceSource>>,
    cores: usize,
    kernel: Kernel,
) -> (SimResults, EpochSeries) {
    let mut sys = System::new(SimConfig::with_cores(cores), traces);
    sys.set_telemetry(TelemetrySink::recording(TelemetryConfig::default()));
    let results = sys.run_with_kernel(INSTRUCTIONS, WARMUP, kernel);
    let epochs = sys
        .telemetry()
        .with(|t| t.epochs.clone())
        .unwrap_or_default();
    (results, epochs)
}

fn assert_equivalent(workload: &str, cores: usize, seed: u64, quota: u64, codec: Codec) {
    let path = tmpdir().join(format!(
        "{}_c{cores}_{}.ctf",
        workload.replace('+', "-"),
        codec.name()
    ));
    record_workload(&path, workload, cores, seed, quota, codec, 1_000)
        .unwrap_or_else(|e| panic!("recording {workload}: {e}"));
    let tf = TraceFile::open(&path).unwrap();
    for kernel in [Kernel::EventDriven, Kernel::Reference] {
        let live = run_system(
            build_workload_sources(workload, cores, seed).unwrap(),
            cores,
            kernel,
        );
        let replayed = run_system(tf.sources().unwrap(), cores, kernel);
        assert_eq!(
            replayed.0,
            live.0,
            "{workload} ({}, {kernel:?}): SimResults diverged between live and replay",
            codec.name()
        );
        assert_eq!(
            replayed.1,
            live.1,
            "{workload} ({}, {kernel:?}): epoch telemetry diverged between live and replay",
            codec.name()
        );
    }
}

#[test]
fn every_registered_workload_replays_identically() {
    // single-core consumption is bounded by warmup + instructions plus
    // the ROB run-ahead; 4x the budget is far beyond that
    let quota = 4 * (WARMUP + INSTRUCTIONS);
    for (i, workload) in chrome_traces::all_workloads().iter().enumerate() {
        // alternate codecs across the registry so both stay covered
        // without doubling the matrix
        let codec = if i % 2 == 0 {
            Codec::Compact
        } else {
            Codec::ChampSim
        };
        assert_equivalent(workload, 1, 0x5EED + i as u64, quota, codec);
    }
}

#[test]
fn heterogeneous_mix_replays_identically() {
    // early-finishing cores keep running until the slowest meets its
    // quota, so multi-core consumption needs a much larger margin
    let quota = 40 * (WARMUP + INSTRUCTIONS);
    assert_equivalent("mcf+libquantum", 2, 0x0DDB, quota, Codec::Compact);
}
