//! Round-trip property tests over randomized record streams, plus
//! corpus-level compression and corruption-robustness checks.
//!
//! Every stream drawn here goes encode → decode → compare for both
//! codecs; mutated and truncated containers must fail with a
//! `TraceFileError`, never a panic.

use std::path::PathBuf;

use chrome_sim::rng::SmallRng;
use chrome_sim::trace::TraceSource;
use chrome_sim::types::{AccessKind, TraceRecord};
use chrome_tracefile::recorder::{build_workload_sources, record_sources, record_workload};
use chrome_tracefile::{champsim, codec, Codec, TraceFile, TraceFileError};

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chrome-roundtrip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A random-but-plausible record stream. Addresses avoid 0 (the
/// ChampSim layout cannot represent it); deltas mix small strides with
/// full-range jumps so varint length classes all get exercised.
fn random_stream(rng: &mut SmallRng, len: usize) -> Vec<TraceRecord> {
    let mut pc = 0x400_000u64;
    let mut vaddr = 0x10_0000u64;
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        match rng.next_u64() % 4 {
            0 => pc = pc.wrapping_add(4),
            1 => pc = pc.wrapping_sub(64),
            2 => pc = rng.next_u64() | 1,
            _ => {}
        }
        match rng.next_u64() % 3 {
            0 => vaddr = vaddr.wrapping_add(64),
            1 => vaddr = rng.next_u64() | 1,
            _ => vaddr = vaddr.wrapping_sub(8),
        }
        if vaddr == 0 {
            vaddr = 0x40;
        }
        // kept modest: each non-memory slot costs the ChampSim layout a
        // whole 64-byte instruction (u16::MAX saturation has its own
        // unit tests in both codecs)
        let nonmem = match rng.next_u64() % 4 {
            0 => 0,
            1 => (rng.next_u64() % 8) as u16,
            2 => (rng.next_u64() % 200) as u16,
            _ => 1,
        };
        out.push(TraceRecord {
            nonmem_before: nonmem,
            pc,
            vaddr,
            kind: if rng.next_u64().is_multiple_of(3) {
                AccessKind::Store
            } else {
                AccessKind::Load
            },
            // a leading dep is canonicalized at capture; drawing streams
            // without one keeps encode→decode exact equality testable
            dep_prev: i > 0 && rng.next_u64().is_multiple_of(5),
        });
    }
    out
}

#[test]
fn random_streams_roundtrip_through_both_codecs() {
    let mut rng = SmallRng::seed_from_u64(0xC0DEC);
    for case in 0..50 {
        let len = 1 + (rng.next_u64() % 600) as usize;
        let stream = random_stream(&mut rng, len);
        // compact: frame-based
        let frame = codec::encode_frame(&stream);
        let decoded = codec::decode_stream(&frame).unwrap();
        assert_eq!(decoded, stream, "compact codec, case {case}");
        // champsim: 64-byte instruction records; dep_prev immediately
        // after another memory record survives (the spacing of these
        // streams guarantees a previous instruction to patch)
        let bytes = champsim::encode_stream(&stream).unwrap();
        assert_eq!(
            champsim::decode_stream(&bytes).unwrap(),
            stream,
            "champsim codec, case {case}"
        );
    }
}

#[test]
fn mutated_containers_error_never_panic() {
    let path = tmpdir().join("mutate.ctf");
    record_workload(&path, "mcf", 1, 3, 20_000, Codec::Compact, 5_000).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let mut rng = SmallRng::seed_from_u64(0xBAD);
    let mutated = tmpdir().join("mutated.ctf");
    for _ in 0..200 {
        let mut copy = bytes.clone();
        let at = (rng.next_u64() % copy.len() as u64) as usize;
        copy[at] ^= 1 << (rng.next_u64() % 8);
        std::fs::write(&mutated, &copy).unwrap();
        // every single-bit flip must surface as Err from open+verify or
        // decode a different stream (hash mismatch); none may panic
        if let Ok(tf) = TraceFile::open(&mutated) {
            let _ = tf.verify();
        }
    }
    for cut in [0usize, 1, 7, 16, 100, bytes.len() - 17, bytes.len() - 1] {
        std::fs::write(&mutated, &bytes[..cut.min(bytes.len())]).unwrap();
        assert!(
            TraceFile::open(&mutated).is_err(),
            "truncation at {cut} must fail to open"
        );
    }
}

#[test]
fn bit_flips_in_payload_are_caught_by_verify() {
    let path = tmpdir().join("payload.ctf");
    record_workload(&path, "lbm", 1, 9, 20_000, Codec::ChampSim, 5_000).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    // flip one bit inside the first core's stream (past the header)
    let mut copy = bytes;
    copy[64] ^= 0x10;
    let flipped = tmpdir().join("payload-flipped.ctf");
    std::fs::write(&flipped, &copy).unwrap();
    // structural detection at open is fine too; otherwise verify must
    // catch the flip
    if let Ok(tf) = TraceFile::open(&flipped) {
        match tf.verify() {
            Err(TraceFileError::HashMismatch { .. } | TraceFileError::Corrupt(_)) => {}
            other => panic!("verify must catch the flip, got {other:?}"),
        }
    }
}

#[test]
fn compact_codec_beats_eight_bytes_per_instruction_on_smoke_corpus() {
    // the acceptance bar: averaged over the registered corpus at smoke
    // scale, the compact codec stays under 8 bytes per instruction
    // (ChampSim's layout costs 64)
    let dir = tmpdir();
    let mut total_bytes = 0u64;
    let mut total_instr = 0u64;
    for (i, workload) in chrome_traces::all_workloads().iter().enumerate() {
        let path = dir.join(format!("corpus-{workload}.ctf"));
        let m = record_workload(
            &path,
            workload,
            1,
            100 + i as u64,
            50_000,
            Codec::Compact,
            10_000,
        )
        .unwrap();
        total_bytes += m.total_stream_bytes();
        total_instr += m.total_instructions();
        assert!(
            m.bytes_per_instruction() < 8.0,
            "{workload}: {:.3} bytes/instruction",
            m.bytes_per_instruction()
        );
    }
    let corpus = total_bytes as f64 / total_instr as f64;
    assert!(corpus < 8.0, "corpus-wide {corpus:.3} bytes/instruction");
}

#[test]
fn recorded_stream_is_exactly_the_generator_prefix() {
    // decode-and-compare over a GAP workload (pointer-chasing shapes
    // stress the dependence encoding) for both codecs
    for codec in [Codec::Compact, Codec::ChampSim] {
        let path = tmpdir().join(format!("prefix-{}.ctf", codec.name()));
        record_workload(&path, "bfs-ur", 1, 11, 30_000, codec, 10_000).unwrap();
        let tf = TraceFile::open(&path).unwrap();
        tf.verify().unwrap();
        let decoded = tf.decode_core(0).unwrap();
        let mut live = build_workload_sources("bfs-ur", 1, 11).unwrap();
        for (j, rec) in decoded.iter().enumerate() {
            let mut expect = live[0].next_record();
            if j == 0 {
                expect.dep_prev = false;
            }
            assert_eq!(*rec, expect, "{} record {j}", codec.name());
        }
    }
}

#[test]
fn ad_hoc_sources_record_without_workload_identity() {
    // record_sources accepts any TraceSource, not just registry names
    struct Ping(u64);
    impl TraceSource for Ping {
        fn next_record(&mut self) -> TraceRecord {
            self.0 = self.0.wrapping_add(0x40);
            TraceRecord::load(0x400, 0x1000 + (self.0 % 0x8000), 1)
        }
        fn name(&self) -> &str {
            "ping"
        }
    }
    let path = tmpdir().join("adhoc.ctf");
    let m = record_sources(
        &path,
        vec![Box::new(Ping(0))],
        "adhoc-experiment",
        5_000,
        Codec::Compact,
        1_000,
    )
    .unwrap();
    assert_eq!(m.spec, "adhoc-experiment");
    assert!(m.spec_field("workload").is_none());
    TraceFile::open(&path).unwrap().verify().unwrap();
}
