//! GAP-benchmark-style graph workloads.
//!
//! Instead of replaying GAP trace files (not redistributable), this
//! module *runs the actual graph algorithms* — BFS, Connected
//! Components, PageRank, SSSP and Betweenness Centrality — over CSR
//! graphs, and emits the memory-access stream each algorithm naturally
//! produces: sequential scans of the offsets array, bursts over the
//! neighbor array, and data-dependent irregular accesses to the
//! per-vertex data arrays. The three paper datasets are stood in for by:
//!
//! * `ur` — uniform-random graph (like GAP's `urand`),
//! * `tw` — highly skewed power-law graph (like `twitter`),
//! * `or` — denser, moderately skewed graph (like `orkut`).

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock};

use chrome_sim::rng::SmallRng;
use chrome_sim::trace::TraceSource;
use chrome_sim::types::{mix64, TraceRecord};

// Virtual-address layout for the graph data structures.
const OFFSETS_BASE: u64 = 0x10_0000_0000;
const NEIGHBORS_BASE: u64 = 0x20_0000_0000;
const DATA1_BASE: u64 = 0x30_0000_0000;
const DATA2_BASE: u64 = 0x38_0000_0000;
const QUEUE_BASE: u64 = 0x40_0000_0000;

// PCs for the characteristic access sites of a vertex-centric kernel.
const PC_OFFSETS: u64 = 0x51_0000;
const PC_NEIGHBORS: u64 = 0x51_0010;
const PC_DATA_LOAD: u64 = 0x51_0020;
const PC_DATA_STORE: u64 = 0x51_0030;
const PC_QUEUE: u64 = 0x51_0040;

/// A compressed-sparse-row graph.
#[derive(Debug)]
pub struct CsrGraph {
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
}

impl CsrGraph {
    /// Uniform-random graph: every vertex has ~`avg_deg` neighbors drawn
    /// uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `avg_deg == 0`.
    pub fn uniform(n: usize, avg_deg: usize, seed: u64) -> Self {
        assert!(n > 0 && avg_deg > 0, "degenerate graph");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(n * avg_deg);
        offsets.push(0u32);
        for _ in 0..n {
            let deg = rng.gen_range(avg_deg / 2..=avg_deg + avg_deg / 2);
            for _ in 0..deg {
                neighbors.push(rng.gen_range(0..n as u32));
            }
            offsets.push(neighbors.len() as u32);
        }
        CsrGraph { offsets, neighbors }
    }

    /// Skewed graph: degrees and endpoints follow a power law, so a few
    /// hub vertices attract most edges (social-network-like).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `avg_deg == 0`.
    pub fn skewed(n: usize, avg_deg: usize, skew: f64, seed: u64) -> Self {
        assert!(n > 0 && avg_deg > 0, "degenerate graph");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(n * avg_deg);
        offsets.push(0u32);
        for v in 0..n {
            // hubs (low hashed rank) get larger out-degree
            let rank = (mix64(v as u64 ^ seed) % n as u64) as f64 / n as f64;
            let boost = (1.0 / (rank + 0.02)).powf(skew).min(32.0);
            let deg = ((avg_deg as f64) * boost * 0.2).max(1.0) as usize;
            for _ in 0..deg {
                // endpoint choice also skewed toward hubs
                let u: f64 = rng.gen_f64();
                let target_rank = u.powf(1.0 + skew * 2.0);
                let t = ((target_rank * n as f64) as u64).min(n as u64 - 1);
                // map rank to a scattered vertex id so hubs spread over pages
                neighbors.push((mix64(t) % n as u64) as u32);
            }
            offsets.push(neighbors.len() as u32);
        }
        CsrGraph { offsets, neighbors }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// Neighbor slice of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors_of(&self, v: u32) -> &[u32] {
        let s = self.offsets[v as usize] as usize;
        let e = self.offsets[v as usize + 1] as usize;
        &self.neighbors[s..e]
    }

    /// Deterministic edge weight in `1..=16` (for SSSP).
    pub fn weight(&self, u: u32, v: u32) -> u32 {
        (mix64(((u as u64) << 32) | v as u64) % 16 + 1) as u32
    }
}

/// Which GAP kernel a source runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Breadth-first search.
    Bfs,
    /// Connected components (label propagation).
    Cc,
    /// PageRank (synchronous iterations).
    Pr,
    /// Single-source shortest paths (Bellman-Ford rounds).
    Sssp,
    /// Betweenness centrality (forward BFS + backward accumulation).
    Bc,
}

impl Kernel {
    fn parse(s: &str) -> Option<Kernel> {
        Some(match s {
            "bfs" => Kernel::Bfs,
            "cc" => Kernel::Cc,
            "pr" => Kernel::Pr,
            "sssp" => Kernel::Sssp,
            "bc" => Kernel::Bc,
            _ => return None,
        })
    }
}

/// The GAP workload names of the paper's Table VI (plus the `bc` traces
/// mentioned in §VI).
pub fn gap_workloads() -> &'static [&'static str] {
    &[
        "bfs-or", "bfs-tw", "bfs-ur", "cc-or", "cc-tw", "cc-ur", "pr-or", "pr-tw", "pr-ur",
        "sssp-or", "sssp-tw", "sssp-ur", "bc-or", "bc-tw", "bc-ur",
    ]
}

/// Default vertex count for the shared datasets (1M vertices; adjacency
/// arrays far exceed the largest simulated LLC).
pub const DEFAULT_VERTICES: usize = 1 << 20;

fn dataset(tag: &str) -> Option<Arc<CsrGraph>> {
    static CACHE: OnceLock<Mutex<HashMap<String, Arc<CsrGraph>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = cache.lock().expect("dataset cache poisoned");
    if let Some(g) = guard.get(tag) {
        return Some(g.clone());
    }
    let n = DEFAULT_VERTICES;
    let g = match tag {
        "ur" => CsrGraph::uniform(n, 12, 0xBEEF),
        "tw" => CsrGraph::skewed(n, 16, 0.9, 0xFEED),
        "or" => CsrGraph::skewed(n, 24, 0.5, 0xACED),
        _ => return None,
    };
    let arc = Arc::new(g);
    guard.insert(tag.to_string(), arc.clone());
    Some(arc)
}

/// Build a GAP workload by name (`"<kernel>-<dataset>"`, e.g.
/// `"pr-tw"`); `None` for unknown names.
pub fn build_gap(name: &str, seed: u64) -> Option<Box<dyn TraceSource>> {
    let (kernel_s, dataset_s) = name.split_once('-')?;
    let kernel = Kernel::parse(kernel_s)?;
    let graph = dataset(dataset_s)?;
    Some(Box::new(GapSource::new(name, kernel, graph, seed)))
}

/// A trace source that runs a graph kernel and streams its accesses.
pub struct GapSource {
    name: String,
    kernel: Kernel,
    graph: Arc<CsrGraph>,
    buf: VecDeque<TraceRecord>,
    rng: SmallRng,
    // shared vertex-centric state
    dist: Vec<u32>,
    aux: Vec<u32>,
    frontier: Vec<u32>,
    next_frontier: Vec<u32>,
    cursor: usize,
    round: u32,
    // bc backward pass
    levels: Vec<Vec<u32>>,
    backward: bool,
}

impl std::fmt::Debug for GapSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GapSource")
            .field("name", &self.name)
            .field("round", &self.round)
            .finish_non_exhaustive()
    }
}

impl GapSource {
    /// Create a kernel source over `graph`.
    pub fn new(name: &str, kernel: Kernel, graph: Arc<CsrGraph>, seed: u64) -> Self {
        let n = graph.num_vertices();
        let mut src = GapSource {
            name: name.to_string(),
            kernel,
            graph,
            buf: VecDeque::with_capacity(512),
            rng: SmallRng::seed_from_u64(seed ^ 0x6A7),
            dist: vec![u32::MAX; n],
            aux: vec![0; n],
            frontier: Vec::new(),
            next_frontier: Vec::new(),
            cursor: 0,
            round: 0,
            levels: Vec::new(),
            backward: false,
        };
        src.restart();
        src
    }

    fn restart(&mut self) {
        let n = self.graph.num_vertices();
        self.round = 0;
        self.cursor = 0;
        self.backward = false;
        self.levels.clear();
        match self.kernel {
            Kernel::Bfs | Kernel::Sssp | Kernel::Bc => {
                for d in &mut self.dist {
                    *d = u32::MAX;
                }
                let src = self.rng.gen_range(0..n as u32);
                self.dist[src as usize] = 0;
                self.aux[src as usize] = 1; // sigma for bc
                self.frontier = vec![src];
                self.next_frontier.clear();
            }
            Kernel::Cc => {
                for (i, d) in self.dist.iter_mut().enumerate() {
                    *d = i as u32;
                }
                self.frontier.clear();
            }
            Kernel::Pr => {
                for d in self.dist.iter_mut() {
                    *d = 1000; // fixed-point rank
                }
                self.frontier.clear();
            }
        }
    }

    // ---- emission helpers ----

    fn emit_offsets(&mut self, u: u32) {
        self.buf.push_back(TraceRecord::load(
            PC_OFFSETS,
            OFFSETS_BASE + u as u64 * 4,
            6,
        ));
    }

    fn emit_neighbor(&mut self, edge_index: usize) {
        self.buf.push_back(TraceRecord::load(
            PC_NEIGHBORS,
            NEIGHBORS_BASE + edge_index as u64 * 4,
            3,
        ));
    }

    fn emit_data_load(&mut self, v: u32, second_array: bool) {
        let base = if second_array { DATA2_BASE } else { DATA1_BASE };
        // data-dependent on the neighbor load -> serialized
        self.buf
            .push_back(TraceRecord::dep_load(PC_DATA_LOAD, base + v as u64 * 4, 8));
    }

    fn emit_data_store(&mut self, v: u32, second_array: bool) {
        let base = if second_array { DATA2_BASE } else { DATA1_BASE };
        self.buf
            .push_back(TraceRecord::store(PC_DATA_STORE, base + v as u64 * 4, 4));
    }

    fn emit_queue(&mut self, slot: usize) {
        self.buf.push_back(TraceRecord::store(
            PC_QUEUE,
            QUEUE_BASE + slot as u64 * 4,
            4,
        ));
    }

    /// Scan vertex `u`'s adjacency, emitting the canonical access pattern
    /// and calling `f(self, v, edge_index)` per neighbor.
    fn scan_vertex<F>(&mut self, u: u32, mut f: F)
    where
        F: FnMut(&mut Self, u32, usize),
    {
        self.emit_offsets(u);
        let start = self.graph.offsets[u as usize] as usize;
        let end = self.graph.offsets[u as usize + 1] as usize;
        for i in start..end {
            self.emit_neighbor(i);
            let v = self.graph.neighbors[i];
            f(self, v, i);
        }
    }

    // ---- kernel steps (process a handful of vertices per call) ----

    fn advance(&mut self) {
        match self.kernel {
            Kernel::Bfs => self.advance_bfs(),
            Kernel::Cc => self.advance_cc(),
            Kernel::Pr => self.advance_pr(),
            Kernel::Sssp => self.advance_sssp(),
            Kernel::Bc => self.advance_bc(),
        }
    }

    fn advance_bfs(&mut self) {
        for _ in 0..4 {
            if self.cursor >= self.frontier.len() {
                if self.next_frontier.is_empty() {
                    self.restart();
                    return;
                }
                self.frontier = std::mem::take(&mut self.next_frontier);
                self.cursor = 0;
                self.round += 1;
            }
            let u = self.frontier[self.cursor];
            self.cursor += 1;
            let round = self.round;
            let mut discovered = Vec::new();
            self.scan_vertex(u, |s, v, _| {
                s.emit_data_load(v, false);
                if s.dist[v as usize] == u32::MAX {
                    s.dist[v as usize] = round + 1;
                    s.emit_data_store(v, false);
                    discovered.push(v);
                }
            });
            for v in discovered {
                let slot = self.next_frontier.len();
                self.next_frontier.push(v);
                self.emit_queue(slot);
            }
        }
    }

    fn advance_cc(&mut self) {
        let n = self.graph.num_vertices();
        let mut changed = false;
        for _ in 0..4 {
            if self.cursor >= n {
                self.cursor = 0;
                self.round += 1;
                if self.round > 32 {
                    self.restart();
                    return;
                }
            }
            let u = self.cursor as u32;
            self.cursor += 1;
            let mut min_label = self.dist[u as usize];
            self.scan_vertex(u, |s, v, _| {
                s.emit_data_load(v, false);
                min_label = min_label.min(s.dist[v as usize]);
            });
            if min_label < self.dist[u as usize] {
                self.dist[u as usize] = min_label;
                self.emit_data_store(u, false);
                changed = true;
            }
        }
        let _ = changed;
    }

    fn advance_pr(&mut self) {
        let n = self.graph.num_vertices();
        for _ in 0..4 {
            if self.cursor >= n {
                // end of a PageRank iteration: swap rank arrays
                std::mem::swap(&mut self.dist, &mut self.aux);
                self.cursor = 0;
                self.round += 1;
            }
            let u = self.cursor as u32;
            self.cursor += 1;
            let mut sum: u64 = 0;
            self.scan_vertex(u, |s, v, _| {
                s.emit_data_load(v, false);
                sum += s.dist[v as usize] as u64;
            });
            let deg = self.graph.neighbors_of(u).len().max(1) as u64;
            self.aux[u as usize] = (150 + (sum * 85 / 100) / deg) as u32;
            self.emit_data_store(u, true);
        }
    }

    fn advance_sssp(&mut self) {
        for _ in 0..4 {
            if self.cursor >= self.frontier.len() {
                if self.next_frontier.is_empty() || self.round > 64 {
                    self.restart();
                    return;
                }
                self.frontier = std::mem::take(&mut self.next_frontier);
                self.frontier.sort_unstable();
                self.frontier.dedup();
                self.cursor = 0;
                self.round += 1;
            }
            let u = self.frontier[self.cursor];
            self.cursor += 1;
            let du = self.dist[u as usize];
            if du == u32::MAX {
                continue;
            }
            let mut relaxed = Vec::new();
            self.scan_vertex(u, |s, v, _| {
                s.emit_data_load(v, false);
                let w = s.graph.weight(u, v);
                let cand = du.saturating_add(w);
                if cand < s.dist[v as usize] {
                    s.dist[v as usize] = cand;
                    s.emit_data_store(v, false);
                    relaxed.push(v);
                }
            });
            for v in relaxed {
                let slot = self.next_frontier.len();
                self.next_frontier.push(v);
                self.emit_queue(slot);
            }
        }
    }

    fn advance_bc(&mut self) {
        if !self.backward {
            // forward phase: BFS that also accumulates path counts and
            // remembers the levels
            for _ in 0..4 {
                if self.cursor >= self.frontier.len() {
                    if self.next_frontier.is_empty() {
                        self.backward = true;
                        self.cursor = 0;
                        return;
                    }
                    self.levels.push(std::mem::take(&mut self.frontier));
                    self.frontier = std::mem::take(&mut self.next_frontier);
                    self.cursor = 0;
                    self.round += 1;
                }
                let u = self.frontier[self.cursor];
                self.cursor += 1;
                let round = self.round;
                let sigma_u = self.aux[u as usize];
                let mut discovered = Vec::new();
                self.scan_vertex(u, |s, v, _| {
                    s.emit_data_load(v, false);
                    if s.dist[v as usize] == u32::MAX {
                        s.dist[v as usize] = round + 1;
                        s.emit_data_store(v, false);
                        discovered.push(v);
                    }
                    if s.dist[v as usize] == round + 1 {
                        s.aux[v as usize] = s.aux[v as usize].wrapping_add(sigma_u);
                        s.emit_data_load(v, true);
                        s.emit_data_store(v, true);
                    }
                });
                for v in discovered {
                    let slot = self.next_frontier.len();
                    self.next_frontier.push(v);
                    self.emit_queue(slot);
                }
            }
        } else {
            // backward phase: walk levels in reverse, accumulating
            // dependency scores
            for _ in 0..4 {
                if self.cursor >= self.frontier.len() {
                    match self.levels.pop() {
                        Some(level) => {
                            self.frontier = level;
                            self.cursor = 0;
                        }
                        None => {
                            self.restart();
                            return;
                        }
                    }
                }
                if self.frontier.is_empty() {
                    self.restart();
                    return;
                }
                let u = self.frontier[self.cursor];
                self.cursor += 1;
                self.scan_vertex(u, |s, v, _| {
                    s.emit_data_load(v, true);
                });
                self.emit_data_store(u, true);
            }
        }
    }
}

impl TraceSource for GapSource {
    fn next_record(&mut self) -> TraceRecord {
        let mut guard = 0;
        while self.buf.is_empty() {
            self.advance();
            guard += 1;
            assert!(guard < 10_000, "kernel failed to produce records");
        }
        self.buf.pop_front().expect("buffer refilled")
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_graph() -> Arc<CsrGraph> {
        Arc::new(CsrGraph::uniform(1024, 8, 42))
    }

    #[test]
    fn uniform_graph_geometry() {
        let g = CsrGraph::uniform(100, 8, 1);
        assert_eq!(g.num_vertices(), 100);
        assert!(g.num_edges() >= 400 && g.num_edges() <= 1200);
        for v in 0..100 {
            for &n in g.neighbors_of(v) {
                assert!((n as usize) < 100);
            }
        }
    }

    #[test]
    fn skewed_graph_has_hubs() {
        let g = CsrGraph::skewed(2000, 16, 0.9, 1);
        let mut in_deg = vec![0u32; 2000];
        for &v in &g.neighbors {
            in_deg[v as usize] += 1;
        }
        in_deg.sort_unstable_by(|a, b| b.cmp(a));
        let top = in_deg[..20].iter().sum::<u32>() as f64;
        let total = g.num_edges() as f64;
        assert!(top / total > 0.05, "top-20 share = {}", top / total);
    }

    #[test]
    fn weight_is_deterministic_and_bounded() {
        let g = CsrGraph::uniform(10, 2, 1);
        for u in 0..10 {
            for v in 0..10 {
                let w = g.weight(u, v);
                assert!((1..=16).contains(&w));
                assert_eq!(w, g.weight(u, v));
            }
        }
    }

    #[test]
    fn all_kernels_stream_records() {
        for k in [
            Kernel::Bfs,
            Kernel::Cc,
            Kernel::Pr,
            Kernel::Sssp,
            Kernel::Bc,
        ] {
            let mut s = GapSource::new("t", k, small_graph(), 7);
            for i in 0..20_000 {
                let r = s.next_record();
                assert!(
                    r.vaddr >= OFFSETS_BASE,
                    "{k:?} record {i} vaddr {:#x}",
                    r.vaddr
                );
            }
        }
    }

    #[test]
    fn bfs_emits_dependent_data_loads() {
        let mut s = GapSource::new("t", Kernel::Bfs, small_graph(), 7);
        let dep = (0..5000).filter(|_| s.next_record().dep_prev).count();
        assert!(dep > 500, "bfs should have dependent loads, dep={dep}");
    }

    #[test]
    fn pr_touches_both_arrays() {
        let mut s = GapSource::new("t", Kernel::Pr, small_graph(), 7);
        let mut d1 = false;
        let mut d2 = false;
        for _ in 0..20_000 {
            let r = s.next_record();
            if r.vaddr >= DATA2_BASE && r.vaddr < QUEUE_BASE {
                d2 = true;
            } else if r.vaddr >= DATA1_BASE && r.vaddr < DATA2_BASE {
                d1 = true;
            }
        }
        assert!(d1 && d2);
    }

    #[test]
    fn gap_source_is_deterministic() {
        let mut a = GapSource::new("t", Kernel::Sssp, small_graph(), 5);
        let mut b = GapSource::new("t", Kernel::Sssp, small_graph(), 5);
        for _ in 0..2000 {
            assert_eq!(a.next_record(), b.next_record());
        }
    }

    #[test]
    fn kernel_parse() {
        assert_eq!(Kernel::parse("bfs"), Some(Kernel::Bfs));
        assert_eq!(Kernel::parse("pr"), Some(Kernel::Pr));
        assert_eq!(Kernel::parse("nope"), None);
    }

    #[test]
    fn gap_names_shape() {
        for name in gap_workloads() {
            let (k, d) = name.split_once('-').expect("kernel-dataset");
            assert!(Kernel::parse(k).is_some(), "{name}");
            assert!(["or", "tw", "ur"].contains(&d), "{name}");
        }
    }

    /// Reverse adjacency for invariant checking.
    fn in_neighbors(g: &CsrGraph) -> Vec<Vec<u32>> {
        let mut inn = vec![Vec::new(); g.num_vertices()];
        for u in 0..g.num_vertices() as u32 {
            for &v in g.neighbors_of(u) {
                inn[v as usize].push(u);
            }
        }
        inn
    }

    #[test]
    fn bfs_distances_are_bfs_consistent() {
        let graph = small_graph();
        let inn = in_neighbors(&graph);
        let mut s = GapSource::new("t", Kernel::Bfs, graph.clone(), 3);
        for _ in 0..30_000 {
            s.next_record();
        }
        // every discovered vertex (other than sources at dist 0) must
        // have an in-neighbor exactly one level above it
        let mut checked = 0;
        for (v, inn_v) in inn.iter().enumerate().take(graph.num_vertices()) {
            let d = s.dist[v];
            if d == u32::MAX || d == 0 {
                continue;
            }
            let ok = inn_v.iter().any(|&u| s.dist[u as usize] == d - 1);
            assert!(
                ok,
                "vertex {v} at depth {d} has no parent at depth {}",
                d - 1
            );
            checked += 1;
        }
        assert!(
            checked > 100,
            "BFS should have discovered vertices (got {checked})"
        );
    }

    #[test]
    fn cc_labels_only_decrease() {
        let graph = small_graph();
        let mut s = GapSource::new("t", Kernel::Cc, graph.clone(), 3);
        for _ in 0..5_000 {
            s.next_record();
        }
        let snapshot = s.dist.clone();
        for _ in 0..20_000 {
            s.next_record();
        }
        if s.round > 0 {
            // still in the same label-propagation execution
            for (v, &snap) in snapshot.iter().enumerate().take(graph.num_vertices()) {
                assert!(s.dist[v] <= snap.max(v as u32), "label grew at {v}");
            }
        }
    }

    #[test]
    fn sssp_distances_respect_triangle_inequality_at_source() {
        let graph = small_graph();
        let mut s = GapSource::new("t", Kernel::Sssp, graph.clone(), 3);
        for _ in 0..30_000 {
            s.next_record();
        }
        // every finite distance must be achievable: dist[v] >= 1 for
        // non-sources, and no relaxed edge can still be over-tight by
        // more than the edge weight bound
        let mut finite = 0;
        for u in 0..graph.num_vertices() as u32 {
            let du = s.dist[u as usize];
            if du == u32::MAX {
                continue;
            }
            finite += 1;
            for &v in graph.neighbors_of(u) {
                let dv = s.dist[v as usize];
                // the kernel may still be mid-round, but dv can never be
                // *worse* than du + max_weight once u settled and the
                // frontier containing u was processed; weak check:
                if dv != u32::MAX {
                    assert!(
                        dv <= du.saturating_add(16 * graph.num_vertices() as u32),
                        "absurd distance at {v}"
                    );
                }
            }
        }
        assert!(finite > 50, "SSSP should settle vertices (got {finite})");
    }

    #[test]
    fn pr_ranks_stay_positive_and_bounded() {
        let graph = small_graph();
        let mut s = GapSource::new("t", Kernel::Pr, graph.clone(), 3);
        for _ in 0..60_000 {
            s.next_record();
        }
        for v in 0..graph.num_vertices() {
            assert!(s.dist[v] > 0 || s.aux[v] > 0, "rank vanished at {v}");
            assert!(s.dist[v] < 1_000_000, "rank exploded at {v}");
        }
    }

    #[test]
    fn bc_reaches_backward_phase() {
        let graph = small_graph();
        let mut s = GapSource::new("t", Kernel::Bc, graph, 3);
        let mut saw_backward = false;
        for _ in 0..200_000 {
            s.next_record();
            if s.backward {
                saw_backward = true;
                break;
            }
        }
        assert!(saw_backward, "BC never finished its forward sweep");
    }

    #[test]
    fn emission_tracks_algorithm_scale() {
        // the number of records per full traversal is proportional to
        // edges visited; make sure the stream is neither empty nor
        // pathologically repetitive
        let graph = small_graph();
        let mut s = GapSource::new("t", Kernel::Bfs, graph, 9);
        let mut addrs = std::collections::HashSet::new();
        for _ in 0..20_000 {
            addrs.insert(s.next_record().vaddr);
        }
        assert!(
            addrs.len() > 2_000,
            "only {} distinct addresses",
            addrs.len()
        );
    }
}
