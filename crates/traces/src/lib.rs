//! # chrome-traces — workload substrate for the CHROME reproduction
//!
//! The paper evaluates on SPEC CPU2006/2017 traces (DPC-3) and GAP graph
//! workloads. Those trace files are not redistributable, so this crate
//! builds the closest synthetic equivalents:
//!
//! * [`spec`] — one seeded generator per named SPEC workload, each a
//!   mixture of streaming, strided, pointer-chasing, and Zipf-temporal
//!   access patterns with workload-specific working-set sizes and PC
//!   populations. The essential property for cache-management research —
//!   PC- and page-correlated reuse behavior — is generated organically.
//! * [`gap`] — actual BFS / CC / PR / SSSP / BC implementations running
//!   over CSR graphs (uniform-random "urand" and skewed "twitter"/
//!   "orkut" stand-ins), emitting the address streams the algorithms
//!   naturally produce.
//! * [`mix`] — homogeneous and heterogeneous multi-core workload mixes
//!   matching the paper's methodology (§VI).
//!
//! # Example
//!
//! ```
//! use chrome_traces::build_workload;
//!
//! let mut src = build_workload("mcf", 42).expect("known workload");
//! let rec = src.next_record();
//! assert!(rec.vaddr > 0);
//! ```

pub mod gap;
pub mod mix;
pub mod patterns;
pub mod spec;
pub mod zipf;

use chrome_sim::trace::TraceSource;

/// Build a workload by name: a SPEC-like name (`"mcf"`, `"gcc17"`, ...)
/// or a GAP name (`"bfs-ur"`, `"pr-tw"`, ...). Returns `None` for
/// unknown names.
pub fn build_workload(name: &str, seed: u64) -> Option<Box<dyn TraceSource>> {
    if let Some(src) = spec::build_spec(name, seed) {
        return Some(src);
    }
    gap::build_gap(name, seed)
}

/// All workload names known to this crate (SPEC first, then GAP).
pub fn all_workloads() -> Vec<&'static str> {
    let mut v = spec::spec_workloads().to_vec();
    v.extend_from_slice(gap::gap_workloads());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_workload_builds() {
        for name in all_workloads() {
            let src = build_workload(name, 1);
            assert!(src.is_some(), "workload {name} failed to build");
        }
    }

    #[test]
    fn unknown_workload_is_none() {
        assert!(build_workload("not-a-workload", 1).is_none());
    }

    #[test]
    fn workload_names_are_unique() {
        let names = all_workloads();
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
