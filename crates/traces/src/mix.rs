//! Multi-programmed workload mixes (paper §VI).
//!
//! * Homogeneous mixes: `n` copies of the same trace, one per core, each
//!   with a distinct seed (so physical placement differs while the
//!   access character is identical).
//! * Heterogeneous mixes: `n` traces drawn at random from the
//!   memory-intensive SPEC pool; the paper uses 150 four-core, 25
//!   eight-core and 25 sixteen-core mixes.

use chrome_sim::trace::TraceSource;
use chrome_sim::types::mix64;

use crate::spec::spec_workloads;

/// Build a homogeneous mix: `cores` copies of `name`. Returns `None` if
/// the workload name is unknown.
pub fn homogeneous(name: &str, cores: usize, seed: u64) -> Option<Vec<Box<dyn TraceSource>>> {
    (0..cores)
        .map(|i| crate::build_workload(name, seed ^ mix64(i as u64 + 1)))
        .collect()
}

/// Deterministically generate `count` heterogeneous mixes of `cores`
/// workload names drawn from the SPEC pool (sampling with replacement,
/// as in the paper's random-mix methodology).
pub fn heterogeneous_names(cores: usize, count: usize, seed: u64) -> Vec<Vec<&'static str>> {
    let pool = spec_workloads();
    (0..count)
        .map(|m| {
            (0..cores)
                .map(|c| {
                    let r = mix64(seed ^ ((m as u64) << 16) ^ c as u64);
                    pool[(r % pool.len() as u64) as usize]
                })
                .collect()
        })
        .collect()
}

/// Build the trace sources for one heterogeneous mix.
pub fn build_mix(names: &[&str], seed: u64) -> Option<Vec<Box<dyn TraceSource>>> {
    names
        .iter()
        .enumerate()
        .map(|(i, n)| crate::build_workload(n, seed ^ mix64(0xB00 + i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_builds_n_sources() {
        let mix = homogeneous("mcf", 4, 1).expect("mcf exists");
        assert_eq!(mix.len(), 4);
        for s in &mix {
            assert_eq!(s.name(), "mcf");
        }
    }

    #[test]
    fn homogeneous_unknown_is_none() {
        assert!(homogeneous("nope", 4, 1).is_none());
    }

    #[test]
    fn heterogeneous_names_deterministic() {
        let a = heterogeneous_names(4, 150, 7);
        let b = heterogeneous_names(4, 150, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 150);
        assert!(a.iter().all(|m| m.len() == 4));
    }

    #[test]
    fn heterogeneous_names_vary_across_mixes() {
        let mixes = heterogeneous_names(4, 50, 7);
        let distinct: std::collections::HashSet<_> = mixes.iter().collect();
        assert!(distinct.len() > 40, "mixes should mostly differ");
    }

    #[test]
    fn build_mix_produces_sources() {
        let names = ["mcf", "libquantum", "gcc", "soplex"];
        let mix = build_mix(&names, 3).expect("all known");
        assert_eq!(mix.len(), 4);
        assert_eq!(mix[1].name(), "libquantum");
    }

    #[test]
    fn single_entry_mix_builds_one_source() {
        let mix = build_mix(&["mcf"], 3).expect("mcf exists");
        assert_eq!(mix.len(), 1);
        assert_eq!(mix[0].name(), "mcf");
        // a single-entry mix uses the per-slot seed derivation, not the
        // homogeneous one: slot 0 of a mix and core 0 of a homogeneous
        // run of the same workload are different instantiations
        let mut via_mix = build_mix(&["mcf"], 3).unwrap();
        let mut via_homo = homogeneous("mcf", 1, 3).unwrap();
        let differs = (0..64).any(|_| via_mix[0].next_record() != via_homo[0].next_record());
        assert!(differs, "mix and homogeneous seeds must stay independent");
    }

    #[test]
    fn build_mix_any_unknown_is_none() {
        assert!(build_mix(&["mcf", "nope"], 1).is_none());
        assert!(build_mix(&[], 1).is_some_and(|m| m.is_empty()));
    }

    #[test]
    fn heterogeneous_pool_indexing_wraps_within_bounds() {
        // the pool index is r % pool.len(); sweep enough draws that
        // every residue class is hit and verify all names come from the
        // pool (guards against off-by-one on the wraparound)
        let pool: std::collections::HashSet<_> = spec_workloads().into_iter().collect();
        for cores in [1, 3, 16, 17] {
            for mix in heterogeneous_names(cores, 64, 0xFEED) {
                assert_eq!(mix.len(), cores);
                for name in mix {
                    assert!(pool.contains(name), "{name} escaped the pool");
                }
            }
        }
        // the full pool is reachable: with many draws every workload
        // should appear at least once
        let seen: std::collections::HashSet<_> = heterogeneous_names(4, 400, 1)
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(seen.len(), pool.len(), "every pool entry is drawable");
    }

    #[test]
    fn homogeneous_per_core_seeds_differ() {
        // copies of the same workload must not be lockstep-identical:
        // each core gets a distinct derived seed
        let mut mix = homogeneous("libquantum", 2, 9).unwrap();
        let (a, b) = mix.split_at_mut(1);
        let differs = (0..256).any(|_| a[0].next_record() != b[0].next_record());
        assert!(differs, "core 0 and core 1 replay identical streams");
    }

    #[test]
    fn zero_core_homogeneous_is_empty() {
        let mix = homogeneous("mcf", 0, 1).expect("vacuously buildable");
        assert!(mix.is_empty());
    }
}
