//! Reusable access-pattern components and the mixture engine behind the
//! SPEC-like generators.
//!
//! Each [`Component`] emits trace records with a dedicated virtual
//! region and a dedicated, small PC population, so that PC-indexed
//! predictors (Hawkeye, Glider, Mockingjay, CHROME) observe the same
//! PC→reuse correlations they would see in real traces:
//!
//! * scan PCs touch lines exactly once (cache-averse),
//! * hot-set PCs re-touch a small set of lines (cache-friendly),
//! * pointer-chase PCs have serialized, low-MLP irregular reuse.

use chrome_sim::rng::SmallRng;
use chrome_sim::trace::TraceSource;
use chrome_sim::types::{mix64, TraceRecord};

use crate::zipf::Zipf;

/// One access-pattern component of a workload mixture.
#[derive(Debug, Clone)]
pub enum Component {
    /// Sequential scan with a byte stride over a large region; classic
    /// streaming (libquantum/lbm-like). Lines are touched once per pass.
    Scan {
        /// Byte stride between accesses.
        stride: u64,
        /// Region size in bytes.
        span: u64,
        /// Non-memory instructions between accesses.
        nonmem: u16,
        /// Fraction of accesses that are stores (0.0–1.0).
        store_frac: f32,
    },
    /// Zipf-distributed reuse over a hot set of lines (temporal
    /// locality; gcc/hmmer-like).
    HotSet {
        /// Number of 64B lines in the hot set.
        lines: usize,
        /// Zipf skew.
        alpha: f64,
        /// Non-memory instructions between accesses.
        nonmem: u16,
        /// Fraction of accesses that are stores.
        store_frac: f32,
    },
    /// Dependent (pointer-chasing) loads over a working set
    /// (mcf/omnetpp/xalancbmk-like): serialized, irregular.
    Chase {
        /// Working-set size in lines.
        lines: usize,
        /// Non-memory instructions between accesses.
        nonmem: u16,
    },
    /// Independent uniform-random loads over a working set (high MLP,
    /// low locality).
    Random {
        /// Working-set size in lines.
        lines: usize,
        /// Non-memory instructions between accesses.
        nonmem: u16,
    },
}

struct ComponentState {
    component: Component,
    base: u64,
    pcs: Vec<u64>,
    pos: u64,
    zipf: Option<Zipf>,
}

impl ComponentState {
    fn new(component: Component, index: usize, seed: u64) -> Self {
        // Each component gets a disjoint 1 GB virtual window and a small
        // PC population derived from the seed.
        let base = 0x1000_0000_0000u64 + ((index as u64) << 30);
        let npcs = match component {
            Component::Scan { .. } => 2,
            Component::HotSet { .. } => 8,
            Component::Chase { .. } => 4,
            Component::Random { .. } => 4,
        };
        let pcs = (0..npcs)
            .map(|k| 0x40_0000 + (mix64(seed ^ (index as u64) << 8 ^ k) & 0xFFFF) * 4)
            .collect();
        let zipf = match component {
            Component::HotSet { lines, alpha, .. } => Some(Zipf::new(lines, alpha)),
            _ => None,
        };
        ComponentState {
            component,
            base,
            pcs,
            pos: 0,
            zipf,
        }
    }

    fn step(&mut self, rng: &mut SmallRng) -> TraceRecord {
        match self.component {
            Component::Scan {
                stride,
                span,
                nonmem,
                store_frac,
            } => {
                let addr = self.base + self.pos;
                self.pos = (self.pos + stride) % span;
                let pc = self.pcs[(self.pos / stride) as usize % self.pcs.len().min(2)];
                if rng.gen_f32() < store_frac {
                    TraceRecord::store(pc, addr, nonmem)
                } else {
                    TraceRecord::load(pc, addr, nonmem)
                }
            }
            Component::HotSet {
                lines,
                nonmem,
                store_frac,
                ..
            } => {
                let rank = self.zipf.as_ref().expect("zipf built").sample(rng);
                // scatter ranks over the region so hot lines spread
                // across pages and sets
                let line = (mix64(rank as u64) % lines as u64) as usize;
                let addr = self.base + (line as u64) * 64;
                // hot ranks use the first half of the PC population,
                // cold ranks the second half: PC correlates with reuse
                let half = self.pcs.len() / 2;
                let pc = if rank < lines / 8 {
                    self.pcs[rank % half.max(1)]
                } else {
                    self.pcs[half + rank % (self.pcs.len() - half)]
                };
                if rng.gen_f32() < store_frac {
                    TraceRecord::store(pc, addr, nonmem)
                } else {
                    TraceRecord::load(pc, addr, nonmem)
                }
            }
            Component::Chase { lines, nonmem } => {
                // deterministic "pointer" function over the working set
                self.pos = mix64(self.pos ^ 0xA5A5) % lines as u64;
                let addr = self.base + self.pos * 64;
                let pc = self.pcs[(self.pos % self.pcs.len() as u64) as usize];
                TraceRecord::dep_load(pc, addr, nonmem)
            }
            Component::Random { lines, nonmem } => {
                let line = rng.gen_range(0..lines as u64);
                let addr = self.base + line * 64;
                let pc = self.pcs[(line % self.pcs.len() as u64) as usize];
                TraceRecord::load(pc, addr, nonmem)
            }
        }
    }
}

/// A weighted mixture of components executed in bursts, giving the
/// phase-like behavior of real applications.
pub struct MixSource {
    name: String,
    components: Vec<ComponentState>,
    weights: Vec<u32>,
    total_weight: u32,
    rng: SmallRng,
    current: usize,
    burst_left: u32,
    burst_len: std::ops::Range<u32>,
}

impl std::fmt::Debug for MixSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MixSource")
            .field("name", &self.name)
            .field("components", &self.components.len())
            .finish_non_exhaustive()
    }
}

impl MixSource {
    /// Build a mixture from weighted components. Bursts of
    /// `burst_len` records run on one component before re-drawing.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or all weights are zero.
    pub fn new(
        name: &str,
        parts: Vec<(u32, Component)>,
        burst_len: std::ops::Range<u32>,
        seed: u64,
    ) -> Self {
        assert!(!parts.is_empty(), "mixture needs at least one component");
        let weights: Vec<u32> = parts.iter().map(|&(w, _)| w).collect();
        let total_weight: u32 = weights.iter().sum();
        assert!(total_weight > 0, "total weight must be positive");
        let components = parts
            .into_iter()
            .enumerate()
            .map(|(i, (_, c))| ComponentState::new(c, i, seed))
            .collect();
        MixSource {
            name: name.to_string(),
            components,
            weights,
            total_weight,
            rng: SmallRng::seed_from_u64(seed ^ 0xDEAD_BEEF),
            current: 0,
            burst_left: 0,
            burst_len,
        }
    }

    fn pick_component(&mut self) {
        let mut x = self.rng.gen_range(0..self.total_weight);
        for (i, &w) in self.weights.iter().enumerate() {
            if x < w {
                self.current = i;
                return;
            }
            x -= w;
        }
        self.current = self.weights.len() - 1;
    }
}

impl TraceSource for MixSource {
    fn next_record(&mut self) -> TraceRecord {
        if self.burst_left == 0 {
            self.pick_component();
            self.burst_left = self
                .rng
                .gen_range(self.burst_len.start..self.burst_len.end.max(self.burst_len.start + 1));
        }
        self.burst_left -= 1;
        self.components[self.current].step(&mut self.rng)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(parts: Vec<(u32, Component)>) -> MixSource {
        MixSource::new("test", parts, 8..32, 11)
    }

    #[test]
    fn scan_component_is_sequential() {
        let mut m = mk(vec![(
            1,
            Component::Scan {
                stride: 64,
                span: 1 << 20,
                nonmem: 2,
                store_frac: 0.0,
            },
        )]);
        let a = m.next_record();
        let b = m.next_record();
        assert_eq!(b.vaddr - a.vaddr, 64);
    }

    #[test]
    fn chase_component_is_dependent() {
        let mut m = mk(vec![(
            1,
            Component::Chase {
                lines: 1 << 16,
                nonmem: 1,
            },
        )]);
        for _ in 0..10 {
            assert!(m.next_record().dep_prev);
        }
    }

    #[test]
    fn hotset_reuses_lines() {
        let mut m = mk(vec![(
            1,
            Component::HotSet {
                lines: 64,
                alpha: 1.0,
                nonmem: 0,
                store_frac: 0.0,
            },
        )]);
        let mut seen = std::collections::HashMap::new();
        for _ in 0..1000 {
            *seen.entry(m.next_record().vaddr).or_insert(0u32) += 1;
        }
        assert!(seen.values().any(|&c| c > 30), "hot lines should repeat");
        assert!(seen.len() <= 64);
    }

    #[test]
    fn mixture_draws_all_components() {
        let mut m = mk(vec![
            (
                1,
                Component::Scan {
                    stride: 64,
                    span: 1 << 20,
                    nonmem: 0,
                    store_frac: 0.0,
                },
            ),
            (
                1,
                Component::Chase {
                    lines: 1 << 10,
                    nonmem: 0,
                },
            ),
        ]);
        let mut dep = 0;
        let mut indep = 0;
        for _ in 0..5000 {
            if m.next_record().dep_prev {
                dep += 1;
            } else {
                indep += 1;
            }
        }
        assert!(dep > 500 && indep > 500, "dep={dep} indep={indep}");
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            MixSource::new(
                "d",
                vec![
                    (
                        2,
                        Component::Random {
                            lines: 4096,
                            nonmem: 1,
                        },
                    ),
                    (
                        1,
                        Component::HotSet {
                            lines: 256,
                            alpha: 0.9,
                            nonmem: 0,
                            store_frac: 0.2,
                        },
                    ),
                ],
                4..16,
                99,
            )
        };
        let mut a = build();
        let mut b = build();
        for _ in 0..500 {
            assert_eq!(a.next_record(), b.next_record());
        }
    }

    #[test]
    fn store_fraction_produces_stores() {
        let mut m = mk(vec![(
            1,
            Component::Scan {
                stride: 64,
                span: 1 << 20,
                nonmem: 0,
                store_frac: 0.5,
            },
        )]);
        let stores = (0..1000)
            .filter(|_| m.next_record().kind == chrome_sim::types::AccessKind::Store)
            .count();
        assert!(stores > 300 && stores < 700, "stores={stores}");
    }

    #[test]
    fn components_use_disjoint_regions() {
        let mut m = mk(vec![
            (
                1,
                Component::Scan {
                    stride: 64,
                    span: 1 << 20,
                    nonmem: 0,
                    store_frac: 0.0,
                },
            ),
            (
                1,
                Component::Random {
                    lines: 4096,
                    nonmem: 0,
                },
            ),
        ]);
        let mut regions = std::collections::HashSet::new();
        for _ in 0..2000 {
            regions.insert(m.next_record().vaddr >> 30);
        }
        assert_eq!(regions.len(), 2, "each component has its own 1GB window");
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_mixture_rejected() {
        let _ = MixSource::new("x", vec![], 1..2, 0);
    }
}
