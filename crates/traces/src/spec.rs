//! SPEC-CPU-like synthetic workloads.
//!
//! Each named workload is a seeded mixture of access-pattern components
//! with working-set sizes, pattern ratios, store fractions and compute
//! densities chosen to mimic the published memory character of the
//! corresponding SPEC CPU2006/2017 benchmark (all are memory-intensive:
//! LLC MPKI > 1 without prefetching, matching the paper's screening
//! criterion).

use chrome_sim::trace::TraceSource;
use chrome_sim::types::mix64;

use crate::patterns::{Component, MixSource};

const MB: u64 = 1 << 20;

/// Lines for a working set of `mb` megabytes.
const fn lines(mb: u64) -> usize {
    (mb * MB / 64) as usize
}

fn scan(stride: u64, span_mb: u64, nonmem: u16, store_frac: f32) -> Component {
    Component::Scan {
        stride,
        span: span_mb * MB,
        nonmem,
        store_frac,
    }
}

fn hot(mb_times_4: u64, alpha: f64, nonmem: u16, store_frac: f32) -> Component {
    // `mb_times_4` is in quarter-megabytes so sub-1MB hot sets are expressible.
    Component::HotSet {
        lines: (mb_times_4 * MB / 4 / 64) as usize,
        alpha,
        nonmem,
        store_frac,
    }
}

fn chase(span_mb: u64, nonmem: u16) -> Component {
    Component::Chase {
        lines: lines(span_mb),
        nonmem,
    }
}

fn random(span_mb: u64, nonmem: u16) -> Component {
    Component::Random {
        lines: lines(span_mb),
        nonmem,
    }
}

/// The SPEC CPU2006 workload names evaluated in the paper (Table VI).
pub const SPEC06: &[&str] = &[
    "gcc",
    "bwaves",
    "mcf",
    "milc",
    "zeusmp",
    "gromacs",
    "leslie3d",
    "soplex",
    "hmmer",
    "GemsFDTD",
    "libquantum",
    "astar",
    "wrf",
    "xalancbmk",
];

/// The SPEC CPU2017 workload names evaluated in the paper (Table VI).
pub const SPEC17: &[&str] = &[
    "gcc17",
    "bwaves17",
    "mcf17",
    "cactuBSSN",
    "lbm",
    "omnetpp",
    "wrf17",
    "xalancbmk17",
    "cam4",
    "pop2",
    "fotonik3d",
    "roms",
    "xz",
];

/// All SPEC-like workload names (2006 then 2017).
pub fn spec_workloads() -> Vec<&'static str> {
    let mut v = SPEC06.to_vec();
    v.extend_from_slice(SPEC17);
    v
}

/// Build a SPEC-like workload by name; `None` if the name is unknown.
pub fn build_spec(name: &str, seed: u64) -> Option<Box<dyn TraceSource>> {
    let seed = seed
        ^ mix64(
            name.bytes()
                .fold(0u64, |a, b| a.wrapping_mul(131).wrapping_add(b as u64)),
        );
    let parts: Vec<(u32, Component)> = match name {
        // ---- SPEC CPU2006 ----
        // Hot-set sizes are chosen to land between the private L2
        // (1.25MB) and the shared LLC share (~3MB/core), where the
        // management policy actually decides outcomes.
        "gcc" => vec![
            (3, hot(16, 0.40, 42, 0.15)),
            (2, chase(4, 42)),
            (1, scan(64, 8, 42, 0.1)),
        ],
        "bwaves" => vec![(5, scan(64, 24, 28, 0.1)), (1, hot(10, 0.30, 28, 0.0))],
        "mcf" => vec![
            (4, chase(10, 14)),
            (2, hot(24, 0.50, 14, 0.1)),
            (1, random(16, 14)),
        ],
        "milc" => vec![(4, scan(64, 16, 28, 0.2)), (1, random(6, 28))],
        "zeusmp" => vec![
            (3, scan(128, 16, 28, 0.2)),
            (2, scan(64, 8, 28, 0.2)),
            (1, hot(16, 0.30, 28, 0.1)),
        ],
        "gromacs" => vec![(4, hot(24, 0.30, 63, 0.2)), (1, scan(64, 4, 63, 0.1))],
        "leslie3d" => vec![(4, scan(64, 12, 28, 0.3)), (1, hot(16, 0.30, 28, 0.1))],
        "soplex" => vec![
            (3, random(8, 21)),
            (2, hot(32, 0.40, 21, 0.1)),
            (1, scan(64, 16, 21, 0.1)),
        ],
        "hmmer" => vec![(4, hot(40, 0.25, 49, 0.2)), (1, scan(64, 2, 49, 0.1))],
        "GemsFDTD" => vec![(4, scan(64, 24, 21, 0.3)), (2, scan(128, 24, 21, 0.3))],
        "libquantum" => vec![(6, scan(64, 32, 14, 0.25))],
        "astar" => vec![
            (3, chase(6, 28)),
            (2, hot(16, 0.40, 28, 0.1)),
            (1, random(4, 28)),
        ],
        "wrf" => vec![
            (2, scan(64, 8, 35, 0.2)),
            (2, hot(32, 0.30, 35, 0.1)),
            (1, scan(256, 16, 35, 0.2)),
        ],
        "xalancbmk" => vec![(3, chase(8, 35)), (3, hot(12, 0.50, 35, 0.05))],
        // ---- SPEC CPU2017 ----
        "gcc17" => vec![
            (3, hot(20, 0.40, 42, 0.15)),
            (2, chase(5, 42)),
            (1, scan(64, 10, 42, 0.1)),
        ],
        "bwaves17" => vec![(5, scan(64, 28, 21, 0.1)), (1, hot(10, 0.30, 21, 0.0))],
        "mcf17" => vec![
            (4, chase(12, 14)),
            (2, hot(28, 0.50, 14, 0.1)),
            (1, random(20, 14)),
        ],
        "cactuBSSN" => vec![
            (3, scan(64, 20, 28, 0.25)),
            (2, scan(192, 20, 28, 0.25)),
            (1, hot(16, 0.30, 28, 0.1)),
        ],
        "lbm" => vec![(5, scan(64, 24, 14, 0.4)), (1, hot(10, 0.25, 14, 0.1))],
        "omnetpp" => vec![(4, chase(8, 28)), (2, hot(20, 0.40, 28, 0.1))],
        "wrf17" => vec![
            (2, scan(64, 10, 35, 0.2)),
            (2, hot(40, 0.30, 35, 0.1)),
            (1, scan(256, 20, 35, 0.2)),
        ],
        "xalancbmk17" => vec![(3, chase(10, 35)), (3, hot(14, 0.50, 35, 0.05))],
        "cam4" => vec![
            (2, hot(40, 0.30, 35, 0.15)),
            (2, scan(64, 12, 35, 0.2)),
            (1, random(4, 35)),
        ],
        "pop2" => vec![(3, scan(64, 16, 28, 0.25)), (2, hot(28, 0.30, 28, 0.1))],
        "fotonik3d" => vec![(4, scan(64, 20, 21, 0.2)), (1, hot(16, 0.30, 21, 0.0))],
        "roms" => vec![
            (3, scan(64, 16, 28, 0.3)),
            (1, scan(192, 8, 28, 0.3)),
            (1, hot(16, 0.30, 28, 0.1)),
        ],
        "xz" => vec![(3, random(12, 21)), (2, hot(32, 0.40, 21, 0.2))],
        _ => return None,
    };
    Some(Box::new(MixSource::new(name, parts, 16..64, seed)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_build() {
        for name in spec_workloads() {
            assert!(build_spec(name, 0).is_some(), "{name} missing");
        }
        assert_eq!(spec_workloads().len(), 27);
    }

    #[test]
    fn names_carry_through() {
        let src = build_spec("mcf", 0).unwrap();
        assert_eq!(src.name(), "mcf");
    }

    #[test]
    fn different_workloads_differ() {
        let mut a = build_spec("libquantum", 0).unwrap();
        let mut b = build_spec("mcf", 0).unwrap();
        let same = (0..100)
            .filter(|_| a.next_record() == b.next_record())
            .count();
        assert!(same < 10, "workloads should produce different streams");
    }

    #[test]
    fn mcf_is_chase_heavy() {
        let mut src = build_spec("mcf", 3).unwrap();
        let dep = (0..5000).filter(|_| src.next_record().dep_prev).count();
        assert!(dep > 2000, "mcf should be pointer-chasing, dep={dep}");
    }

    #[test]
    fn libquantum_is_streaming() {
        let mut src = build_spec("libquantum", 3).unwrap();
        let mut asc = 0;
        let mut prev = src.next_record().vaddr;
        for _ in 0..5000 {
            let r = src.next_record();
            if r.vaddr > prev {
                asc += 1;
            }
            prev = r.vaddr;
        }
        assert!(asc > 4500, "libquantum should be ascending, asc={asc}");
    }

    #[test]
    fn seeds_change_streams() {
        let mut a = build_spec("soplex", 1).unwrap();
        let mut b = build_spec("soplex", 2).unwrap();
        let same = (0..200)
            .filter(|_| a.next_record() == b.next_record())
            .count();
        assert!(same < 50);
    }

    #[test]
    fn same_seed_reproduces() {
        let mut a = build_spec("gcc", 9).unwrap();
        let mut b = build_spec("gcc", 9).unwrap();
        for _ in 0..500 {
            assert_eq!(a.next_record(), b.next_record());
        }
    }
}
