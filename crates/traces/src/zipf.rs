//! A small, deterministic Zipf sampler over ranks `0..n`.
//!
//! Used by the SPEC-like generators to produce temporal locality: a few
//! lines are extremely hot, with a long cold tail — the distribution
//! empirically observed for data reuse in irregular applications.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use chrome_sim::rng::SmallRng;

/// Quantization buckets for the inverse-CDF index. 4096 entries (16KB)
/// keeps the accelerator resident in L1/L2 while shrinking the searched
/// window to `n / 4096` ranks.
const INDEX_BUCKETS: usize = 4096;

/// The precomputed inverse CDF plus its quantized search index. Tables
/// are pure functions of `(n, alpha)` and are shared via [`table_for`]:
/// hot-set generators use CDFs of 100K+ ranks (megabytes of `f64` built
/// with a `powf` per rank), and a multi-programmed mix rebuilds the
/// identical distribution once per core — and a grid once per scheme —
/// so memoizing the table turns thousands of constructions into a few
/// dozen.
#[derive(Debug)]
struct ZipfTable {
    cdf: Vec<f64>,
    /// `index[j]` = first rank whose CDF reaches `j / INDEX_BUCKETS`.
    index: Vec<u32>,
}

impl ZipfTable {
    fn build(n: usize, alpha: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        let mut index = Vec::with_capacity(INDEX_BUCKETS + 1);
        let mut i = 0usize;
        for j in 0..=INDEX_BUCKETS {
            let u = j as f64 / INDEX_BUCKETS as f64;
            while i < cdf.len() && cdf[i] < u {
                i += 1;
            }
            index.push(i as u32);
        }
        ZipfTable { cdf, index }
    }
}

/// Process-wide table memo (same pattern as the GAP dataset cache).
/// Keyed by `(n, alpha.to_bits())`; the distinct-parameter population is
/// the workload catalogue's, a few dozen entries at most.
fn table_for(n: usize, alpha: f64) -> Arc<ZipfTable> {
    type TableCache = Mutex<HashMap<(usize, u64), Arc<ZipfTable>>>;
    static CACHE: OnceLock<TableCache> = OnceLock::new();
    let cache = CACHE.get_or_init(Default::default);
    let key = (n, alpha.to_bits());
    if let Some(t) = cache.lock().expect("zipf cache lock").get(&key) {
        return Arc::clone(t);
    }
    // Built outside the lock: a cold miss costs milliseconds and other
    // workers should not serialize behind it (both builds are identical).
    let t = Arc::new(ZipfTable::build(n, alpha));
    Arc::clone(
        cache
            .lock()
            .expect("zipf cache lock")
            .entry(key)
            .or_insert(t),
    )
}

/// Samples ranks with probability proportional to `1 / (rank+1)^alpha`
/// via a precomputed inverse CDF.
///
/// Sampling is a two-level search: a quantized index maps `u` to a
/// narrow CDF window, and only that window is binary-searched. The full
/// binary search the index replaces was ~17 cache-missing probes on the
/// trace hot path. The index is only an accelerator — the sampled rank
/// is identical to what a full-array search returns for the same `u`.
#[derive(Debug, Clone)]
pub struct Zipf {
    table: Arc<ZipfTable>,
}

impl Zipf {
    /// Create a sampler over `n` ranks with skew `alpha` (`alpha = 0` is
    /// uniform; `alpha ≈ 1` is classic Zipf).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha < 0`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(alpha >= 0.0, "alpha must be non-negative");
        Zipf {
            table: table_for(n, alpha),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.table.cdf.len()
    }

    /// True when the sampler has exactly one rank.
    pub fn is_empty(&self) -> bool {
        false // constructor guarantees n > 0
    }

    /// Draw a rank in `0..n`: the smallest rank whose CDF reaches the
    /// uniform draw `u` (clamped to the last rank).
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen_f64();
        let cdf = &self.table.cdf;
        let index = &self.table.index;
        let n = cdf.len();
        let j = ((u * INDEX_BUCKETS as f64) as usize).min(INDEX_BUCKETS - 1);
        let mut lo = index[j] as usize;
        if lo > 0 && cdf[lo - 1] >= u {
            // float rounding in `u * INDEX_BUCKETS` landed one bucket too
            // high (ulp-level edge); fall back to the full lower range so
            // the result stays exactly the full-search answer
            lo = 0;
        }
        let hi = ((index[j + 1] as usize) + 1).min(n);
        let mut rank = lo + cdf[lo..hi].partition_point(|&p| p < u);
        if rank == hi && hi < n {
            // same rounding edge on the upper side — resume past the window
            rank = hi + cdf[hi..].partition_point(|&p| p < u);
        }
        rank.min(n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_alpha_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 700.0, "counts {counts:?}");
        }
    }

    #[test]
    fn skewed_when_alpha_one() {
        let z = Zipf::new(100, 1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut rank0 = 0u32;
        let mut rank99 = 0u32;
        for _ in 0..100_000 {
            match z.sample(&mut rng) {
                0 => rank0 += 1,
                99 => rank99 += 1,
                _ => {}
            }
        }
        assert!(rank0 > 20 * rank99.max(1), "rank0={rank0} rank99={rank99}");
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(10, 0.8);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn windowed_search_matches_full_search() {
        // the index is an accelerator only: for the same uniform draw,
        // sample() must return exactly the full-array inverse-CDF rank
        for &(n, alpha) in &[(1usize, 0.0), (7, 1.2), (1000, 0.8), (131_072, 1.0)] {
            let z = Zipf::new(n, alpha);
            let mut rng = SmallRng::seed_from_u64(0xCDF);
            let mut rng2 = rng.clone();
            for _ in 0..20_000 {
                let got = z.sample(&mut rng);
                let u = rng2.gen_f64();
                let want = z.table.cdf.partition_point(|&p| p < u).min(n - 1);
                assert_eq!(got, want, "n={n} alpha={alpha} u={u}");
            }
        }
    }
}
