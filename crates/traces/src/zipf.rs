//! A small, deterministic Zipf sampler over ranks `0..n`.
//!
//! Used by the SPEC-like generators to produce temporal locality: a few
//! lines are extremely hot, with a long cold tail — the distribution
//! empirically observed for data reuse in irregular applications.

use chrome_sim::rng::SmallRng;

/// Samples ranks with probability proportional to `1 / (rank+1)^alpha`
/// via a precomputed inverse CDF.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Create a sampler over `n` ranks with skew `alpha` (`alpha = 0` is
    /// uniform; `alpha ≈ 1` is classic Zipf).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha < 0`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(alpha >= 0.0, "alpha must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the sampler has exactly one rank.
    pub fn is_empty(&self) -> bool {
        false // constructor guarantees n > 0
    }

    /// Draw a rank in `0..n`.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen_f64();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_alpha_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 700.0, "counts {counts:?}");
        }
    }

    #[test]
    fn skewed_when_alpha_one() {
        let z = Zipf::new(100, 1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut rank0 = 0u32;
        let mut rank99 = 0u32;
        for _ in 0..100_000 {
            match z.sample(&mut rng) {
                0 => rank0 += 1,
                99 => rank99 += 1,
                _ => {}
            }
        }
        assert!(rank0 > 20 * rank99.max(1), "rank0={rank0} rank99={rank99}");
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(10, 0.8);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
