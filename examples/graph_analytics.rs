//! GAP-style graph analytics: run the real BFS / PageRank kernels over
//! a skewed graph on 4 cores and watch how CHROME adapts to workloads it
//! never saw during hyper-parameter tuning (paper §VII-D).
//!
//! ```text
//! cargo run --release --example graph_analytics
//! ```

use chrome_repro::chrome::{Chrome, ChromeConfig};
use chrome_repro::sim::{SimConfig, System};
use chrome_repro::traces::gap;

fn main() {
    let instructions = 1_500_000;
    let warmup = 300_000;
    for workload in ["bfs-tw", "pr-ur"] {
        println!("== {workload} on 4 cores ==");
        let mut lru_ipc = 0.0;
        for scheme in ["LRU", "CHROME"] {
            let traces: Vec<_> = (0..4)
                .map(|i| gap::build_gap(workload, 100 + i).expect("known GAP workload"))
                .collect();
            let mut system = if scheme == "LRU" {
                System::new(SimConfig::with_cores(4), traces)
            } else {
                let policy = Box::new(Chrome::new(ChromeConfig {
                    sampled_sets: 512,
                    ..Default::default()
                }));
                System::with_policy(SimConfig::with_cores(4), traces, policy)
            };
            let r = system.run(instructions, warmup);
            if scheme == "LRU" {
                lru_ipc = r.ipc_sum();
            }
            println!(
                "  {scheme:<7} ipc_sum={:.3}  llc_miss={:.1}%  speedup={:.3}x",
                r.ipc_sum(),
                100.0 * r.llc.demand_miss_ratio(),
                r.ipc_sum() / lru_ipc
            );
        }
        println!();
    }
}
