//! A heterogeneous multi-programmed scenario: four different SPEC-like
//! workloads share one LLC; every management scheme takes a turn, and we
//! report per-core IPC, C-AMAT and LLC-obstruction behavior.
//!
//! ```text
//! cargo run --release --example multicore_mix
//! ```

use chrome_repro::chrome::{Chrome, ChromeConfig};
use chrome_repro::policies::build_policy;
use chrome_repro::sim::{LlcPolicy, SimConfig, System};
use chrome_repro::traces::mix;

fn policy_for(name: &str) -> Box<dyn LlcPolicy> {
    build_policy(name).unwrap_or_else(|| {
        assert_eq!(name, "CHROME");
        Box::new(Chrome::new(ChromeConfig {
            sampled_sets: 512,
            ..Default::default()
        }))
    })
}

fn main() {
    let names = ["mcf", "libquantum", "gcc", "xalancbmk"];
    let instructions = 2_000_000;
    let warmup = 400_000;
    println!("heterogeneous 4-core mix: {}\n", names.join(" + "));

    let mut lru_ipc: Vec<f64> = Vec::new();
    for scheme in [
        "LRU",
        "SHiP++",
        "Hawkeye",
        "Glider",
        "Mockingjay",
        "CARE",
        "CHROME",
    ] {
        let traces = mix::build_mix(&names, 7).expect("known workloads");
        let mut system = System::with_policy(SimConfig::with_cores(4), traces, policy_for(scheme));
        let r = system.run(instructions, warmup);
        if scheme == "LRU" {
            lru_ipc = r.per_core.iter().map(|c| c.ipc()).collect();
        }
        let ws: f64 = r
            .per_core
            .iter()
            .zip(&lru_ipc)
            .map(|(c, &b)| c.ipc() / b)
            .sum::<f64>()
            / 4.0;
        let camat: Vec<String> = r
            .per_core
            .iter()
            .map(|c| format!("{:.0}", c.camat_llc()))
            .collect();
        let obstructed: u64 = r.per_core.iter().map(|c| c.obstructed_epochs).sum();
        println!(
            "{scheme:<11} ws={ws:.3}  llc_miss={:.1}%  per-core C-AMAT(LLC)=[{}]  obstructed-epochs={obstructed}",
            100.0 * r.llc.demand_miss_ratio(),
            camat.join(", "),
        );
    }
    println!("\n(ws = weighted speedup over the LRU baseline for the same mix)");
}
