//! Extending the framework: implement a custom LLC policy against the
//! `LlcPolicy` trait — here, a tiny "protect-the-prefetches" toy policy —
//! and race it against LRU and CHROME. This is the integration surface a
//! downstream user would build on.
//!
//! ```text
//! cargo run --release --example policy_playground
//! ```

use chrome_repro::chrome::{Chrome, ChromeConfig};
use chrome_repro::sim::overhead::StorageOverhead;
use chrome_repro::sim::policy::{AccessInfo, CandidateLine, FillDecision, SystemFeedback};
use chrome_repro::sim::types::LineAddr;
use chrome_repro::sim::{LlcPolicy, SimConfig, System};
use chrome_repro::traces::mix;

/// A deliberately simple custom policy: FIFO replacement, except that
/// prefetched blocks that have not yet been used are protected for one
/// extra round.
#[derive(Debug, Default)]
struct PrefetchShield {
    fifo_rank: Vec<u64>,
    shielded: Vec<bool>,
    ways: usize,
    tick: u64,
}

impl LlcPolicy for PrefetchShield {
    fn initialize(&mut self, num_sets: usize, ways: usize, _cores: usize) {
        self.fifo_rank = vec![0; num_sets * ways];
        self.shielded = vec![false; num_sets * ways];
        self.ways = ways;
    }

    fn on_hit(&mut self, set: usize, way: usize, _: &AccessInfo, _: &SystemFeedback) {
        // once used, a block loses its shield
        self.shielded[set * self.ways + way] = false;
    }

    fn on_miss(&mut self, _: usize, _: &AccessInfo, _: &SystemFeedback) -> FillDecision {
        FillDecision::Insert
    }

    fn choose_victim(&mut self, set: usize, c: &[CandidateLine], _: &AccessInfo) -> usize {
        // oldest unshielded block; fall back to oldest overall
        let oldest = |cands: &mut dyn Iterator<Item = &CandidateLine>| {
            cands
                .min_by_key(|cand| self.fifo_rank[set * self.ways + cand.way])
                .map(|c| c.way)
        };
        let mut unshielded = c
            .iter()
            .filter(|cand| !self.shielded[set * self.ways + cand.way]);
        if let Some(w) = oldest(&mut unshielded) {
            // spend the shields of everything older than the victim
            for cand in c {
                self.shielded[set * self.ways + cand.way] = false;
            }
            return w;
        }
        oldest(&mut c.iter()).expect("candidates nonempty")
    }

    fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo, _: &SystemFeedback) {
        self.tick += 1;
        let i = set * self.ways + way;
        self.fifo_rank[i] = self.tick;
        self.shielded[i] = info.is_prefetch;
    }

    fn on_evict(&mut self, _: usize, _: usize, _: LineAddr, _: bool) {}

    fn name(&self) -> &str {
        "PrefetchShield"
    }

    fn storage_overhead(&self, llc_blocks: usize) -> StorageOverhead {
        let mut o = StorageOverhead::new();
        o.add_table("FIFO rank + shield bit", llc_blocks as u64, 5);
        o
    }
}

fn main() {
    let workload = "gcc";
    let instructions = 1_500_000;
    let warmup = 300_000;
    println!("custom-policy playground on `{workload}` (4 cores)\n");
    let mut lru_ipc = 0.0;
    for scheme in ["LRU", "PrefetchShield", "CHROME"] {
        let traces = mix::homogeneous(workload, 4, 42).expect("known workload");
        let cfg = SimConfig::with_cores(4);
        let mut system = match scheme {
            "LRU" => System::new(cfg, traces),
            "PrefetchShield" => {
                System::with_policy(cfg, traces, Box::new(PrefetchShield::default()))
            }
            _ => System::with_policy(
                cfg,
                traces,
                Box::new(Chrome::new(ChromeConfig {
                    sampled_sets: 512,
                    ..Default::default()
                })),
            ),
        };
        let r = system.run(instructions, warmup);
        if scheme == "LRU" {
            lru_ipc = r.ipc_sum();
        }
        println!(
            "{scheme:<15} ipc_sum={:.3}  llc_miss={:.1}%  ephr={:.1}%  vs LRU: {:.3}x",
            r.ipc_sum(),
            100.0 * r.llc.demand_miss_ratio(),
            100.0 * r.llc.ephr(),
            r.ipc_sum() / lru_ipc
        );
    }
}
