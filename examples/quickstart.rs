//! Quickstart: simulate one memory-intensive workload on a 4-core
//! system twice — once under LRU, once under CHROME — and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use chrome_repro::chrome::{Chrome, ChromeConfig};
use chrome_repro::sim::{SimConfig, System};
use chrome_repro::traces::mix;

fn main() {
    let workload = "soplex";
    let cores = 4;
    let instructions = 2_000_000;
    let warmup = 400_000;

    println!("CHROME quickstart: {cores}-core homogeneous `{workload}`");
    println!("({instructions} measured instructions per core)\n");

    // Baseline: classic LRU at the shared LLC.
    let traces = mix::homogeneous(workload, cores, 42).expect("known workload");
    let mut lru_system = System::new(SimConfig::with_cores(cores), traces);
    let lru = lru_system.run(instructions, warmup);

    // CHROME: the online-RL holistic manager.
    let traces = mix::homogeneous(workload, cores, 42).expect("known workload");
    let policy = Box::new(Chrome::new(ChromeConfig {
        sampled_sets: 512,
        ..Default::default()
    }));
    let mut chrome_system = System::with_policy(SimConfig::with_cores(cores), traces, policy);
    let chrome = chrome_system.run(instructions, warmup);

    let speedup: f64 = chrome
        .per_core
        .iter()
        .zip(&lru.per_core)
        .map(|(c, l)| c.ipc() / l.ipc())
        .sum::<f64>()
        / cores as f64;

    println!("                 {:>12} {:>12}", "LRU", "CHROME");
    println!(
        "IPC (sum)        {:>12.3} {:>12.3}",
        lru.ipc_sum(),
        chrome.ipc_sum()
    );
    println!(
        "LLC demand miss  {:>11.1}% {:>11.1}%",
        100.0 * lru.llc.demand_miss_ratio(),
        100.0 * chrome.llc.demand_miss_ratio()
    );
    println!(
        "LLC EPHR         {:>11.1}% {:>11.1}%",
        100.0 * lru.llc.ephr(),
        100.0 * chrome.llc.ephr()
    );
    println!(
        "bypassed blocks  {:>12} {:>12}",
        lru.llc.bypasses, chrome.llc.bypasses
    );
    println!("\nweighted speedup of CHROME over LRU: {:.3}x", speedup);
}
