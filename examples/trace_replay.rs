//! Record → replay: capture a workload to a `.ctf` trace file, then run
//! the same simulation twice — once from the live generator, once
//! streamed back from the file — and verify the results are identical.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use chrome_repro::sim::{SimConfig, System};
use chrome_repro::tracefile::recorder::{build_workload_sources, record_workload};
use chrome_repro::tracefile::{Codec, TraceFile};

fn main() {
    let workload = "mcf";
    let cores = 2;
    let seed = 42;
    let instructions = 200_000;
    let warmup = 40_000;
    // the recording must cover everything the simulation consumes:
    // warmup + measured instructions, ROB run-ahead, and the extra
    // records early-finishing cores pull while the slowest catches up
    let quota = 4 * (warmup + instructions);

    let dir = std::env::temp_dir().join("chrome-trace-replay-example");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(format!("{workload}_c{cores}_s{seed}.ctf"));

    println!("recording {cores}-core `{workload}` ({quota} instructions/core)...");
    let manifest = record_workload(&path, workload, cores, seed, quota, Codec::Compact, 100_000)
        .expect("recording succeeds");
    println!(
        "  {} -> {} records, {} instructions, {} bytes ({:.2} bytes/instruction)",
        path.display(),
        manifest.total_records(),
        manifest.total_instructions(),
        manifest.total_stream_bytes(),
        manifest.bytes_per_instruction(),
    );
    println!("  content hash {}\n", manifest.hash_hex());

    println!("running from the live generator...");
    let traces = build_workload_sources(workload, cores, seed).expect("known workload");
    let live = System::new(SimConfig::with_cores(cores), traces).run(instructions, warmup);

    println!("running from the trace file...");
    let tf = TraceFile::open(&path).expect("recorded file validates");
    let replayed = System::new(
        SimConfig::with_cores(cores),
        tf.sources().expect("streamable"),
    )
    .run(instructions, warmup);

    println!("\n                 {:>12} {:>12}", "live", "replay");
    println!(
        "IPC (sum)        {:>12.4} {:>12.4}",
        live.ipc_sum(),
        replayed.ipc_sum()
    );
    println!(
        "LLC demand miss  {:>11.2}% {:>11.2}%",
        100.0 * live.llc.demand_miss_ratio(),
        100.0 * replayed.llc.demand_miss_ratio()
    );
    assert_eq!(replayed, live, "record -> replay must be byte-identical");
    println!("\nlive and replayed SimResults are byte-identical.");
}
