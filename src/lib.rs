//! # chrome-repro — reproduction of CHROME (HPCA 2024)
//!
//! This facade crate re-exports the whole reproduction stack:
//!
//! * [`sim`] — the multi-core cache-hierarchy simulator substrate,
//! * [`traces`] — synthetic SPEC-like workloads and GAP graph kernels,
//! * [`policies`] — baseline LLC schemes (LRU, SHiP++, Hawkeye, Glider,
//!   Mockingjay, CARE),
//! * [`chrome`] — the CHROME online-RL cache-management agent itself.
//!
//! See `examples/` for runnable end-to-end scenarios and the
//! `chrome-bench` crate for the harness that regenerates every figure
//! and table of the paper.

pub use chrome_core as chrome;
pub use chrome_policies as policies;
pub use chrome_sim as sim;
pub use chrome_telemetry as telemetry;
pub use chrome_tracefile as tracefile;
pub use chrome_traces as traces;

/// Build the default 4-core paper configuration.
///
/// ```
/// let cfg = chrome_repro::paper_config(4);
/// assert_eq!(cfg.cores, 4);
/// ```
pub fn paper_config(cores: usize) -> chrome_sim::SimConfig {
    chrome_sim::SimConfig::with_cores(cores)
}
