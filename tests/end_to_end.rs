//! End-to-end integration tests: full systems (cores + hierarchy + DRAM
//! + policy) running real workload generators.

use chrome_repro::chrome::{Chrome, ChromeConfig};
use chrome_repro::policies::build_policy;
use chrome_repro::sim::{SimConfig, System};
use chrome_repro::traces::{build_workload, mix};

fn small_cfg(cores: usize) -> SimConfig {
    SimConfig::small_test(cores)
}

#[test]
fn every_policy_completes_a_multicore_run() {
    for scheme in ["LRU", "SHiP++", "Hawkeye", "Glider", "Mockingjay", "CARE"] {
        let traces = mix::homogeneous("gcc", 2, 1).expect("gcc exists");
        let policy = build_policy(scheme).expect("known policy");
        let mut sys = System::with_policy(small_cfg(2), traces, policy);
        let r = sys.run(40_000, 5_000);
        assert!(
            r.per_core.iter().all(|c| c.ipc() > 0.0),
            "{scheme} produced zero IPC"
        );
        assert!(r.llc.demand_accesses > 0, "{scheme} starved the LLC");
    }
}

#[test]
fn chrome_completes_and_learns() {
    use chrome_repro::sim::trace::{StridedSource, TraceSource};
    // a dense pure scan (one load per 2 instructions) through the small
    // test LLC: the canonical bypass-learning scenario
    let traces: Vec<Box<dyn TraceSource>> = (0..2)
        .map(|i| Box::new(StridedSource::new(i << 30, 64, 32 << 20, 1)) as Box<dyn TraceSource>)
        .collect();
    let policy = Box::new(Chrome::new(ChromeConfig {
        sampled_sets: 256, // small cache in tests: sample every set
        eq_fifo_len: 8,    // short reward window for a short run
        ..Default::default()
    }));
    let mut sys = System::with_policy(small_cfg(2), traces, policy);
    let r = sys.run(200_000, 10_000);
    // a pure scan through a small LLC: the agent must discover bypassing
    assert!(
        r.llc.bypasses > r.llc.demand_misses / 10,
        "CHROME should bypass a scan: bypasses={} misses={}",
        r.llc.bypasses,
        r.llc.demand_misses
    );
    let report = sys.hierarchy().llc.policy.report();
    let upksa = report
        .iter()
        .find(|(k, _)| k == "upksa")
        .expect("upksa reported")
        .1;
    assert!(upksa > 0.0, "agent never updated its Q-table");
}

#[test]
fn stats_are_coherent() {
    let traces = mix::homogeneous("soplex", 2, 3).expect("soplex exists");
    let mut sys = System::new(small_cfg(2), traces);
    let r = sys.run(60_000, 5_000);
    assert!(r.llc.demand_misses <= r.llc.demand_accesses);
    assert!(r.llc.prefetch_misses <= r.llc.prefetch_accesses);
    assert!(r.llc.prefetch_useful <= r.llc.prefetch_fills);
    // every LLC demand access from a core is attributed by C-AMAT
    let attributed: u64 = r.per_core.iter().map(|c| c.llc_accesses).sum();
    assert_eq!(attributed, r.llc.demand_accesses);
    // memory-active cycles never exceed wall-clock per core
    for c in &r.per_core {
        assert!(c.llc_active_cycles <= c.cycles + 10_000);
    }
}

#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let names = ["mcf", "gcc"];
        let traces = mix::build_mix(&names, 9).expect("known");
        let mut sys = System::new(small_cfg(2), traces);
        let r = sys.run(30_000, 3_000);
        (
            r.per_core[0].cycles,
            r.per_core[1].cycles,
            r.llc.demand_misses,
            r.dram_reads,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn gap_workloads_run_end_to_end() {
    let traces: Vec<_> = (0..2)
        .map(|i| build_workload("bfs-ur", i).expect("bfs-ur exists"))
        .collect();
    let mut sys = System::new(small_cfg(2), traces);
    let r = sys.run(30_000, 3_000);
    assert!(r.llc.demand_accesses > 0);
    assert!(r.per_core[0].ipc() > 0.0);
}

#[test]
fn prefetchers_populate_llc_prefetch_stats() {
    let traces = mix::homogeneous("libquantum", 1, 5).expect("exists");
    let mut sys = System::new(small_cfg(1), traces);
    let r = sys.run(60_000, 5_000);
    assert!(
        r.llc.prefetch_accesses > 0,
        "prefetches should reach the LLC"
    );
    assert!(r.l1d[0].prefetch_fills > 0, "next-line should fill L1");
}

#[test]
fn paper_configuration_boots() {
    // Full Table V geometry (12MB LLC) on a short run: just ensure the
    // real-size system works, including epoch feedback.
    let traces = mix::homogeneous("mcf", 4, 2).expect("exists");
    let policy = Box::new(Chrome::new(ChromeConfig::default()));
    let mut sys = System::with_policy(SimConfig::with_cores(4), traces, policy);
    let r = sys.run(150_000, 20_000);
    assert_eq!(r.per_core.len(), 4);
    assert!(r.per_core[0].total_epochs > 0, "epochs must tick");
}

#[test]
fn weighted_speedup_of_identical_runs_is_one() {
    let mk = || {
        let traces = mix::homogeneous("gcc", 2, 5).expect("exists");
        let mut sys = System::new(small_cfg(2), traces);
        sys.run(30_000, 3_000)
    };
    let a = mk();
    let b = mk();
    let baseline: Vec<f64> = b.per_core.iter().map(|c| c.ipc()).collect();
    let ws = a.weighted_speedup(&baseline);
    assert!(
        (ws - 2.0).abs() < 1e-9,
        "2 cores at ratio 1.0 each, ws = {ws}"
    );
}
