//! Contract tests: every LLC policy must behave sanely when driven with
//! arbitrary access sequences directly through the `SharedLlc`.

use chrome_repro::chrome::{Chrome, ChromeConfig};
use chrome_repro::policies::build_policy;
use chrome_repro::sim::config::CacheConfig;
use chrome_repro::sim::llc::SharedLlc;
use chrome_repro::sim::policy::{AccessInfo, SystemFeedback};
use chrome_repro::sim::types::{mix64, LineAddr};
use chrome_repro::sim::LlcPolicy;

fn all_policies() -> Vec<Box<dyn LlcPolicy>> {
    let mut v: Vec<Box<dyn LlcPolicy>> =
        ["LRU", "SHiP++", "Hawkeye", "Glider", "Mockingjay", "CARE"]
            .iter()
            .map(|n| build_policy(n).expect("known"))
            .collect();
    v.push(Box::new(Chrome::new(ChromeConfig::default())));
    v.push(Box::new(Chrome::new(ChromeConfig::n_chrome())));
    v
}

fn drive(policy: Box<dyn LlcPolicy>, accesses: usize, seed: u64) -> SharedLlc {
    let cfg = CacheConfig {
        capacity: 64 * 8 * 64,
        ways: 8,
        latency: 40,
        mshr_entries: 16,
    };
    let mut llc = SharedLlc::new(&cfg, 2, policy);
    let mut fb = SystemFeedback::new(2);
    for i in 0..accesses {
        let r = mix64(seed ^ i as u64);
        // mixed traffic: hot lines, scans, prefetches, two cores
        let line = match r % 4 {
            0 => LineAddr(r % 64),               // hot
            1 => LineAddr(1_000_000 + i as u64), // scan
            _ => LineAddr(10_000 + r % 4096),    // warm
        };
        let info = AccessInfo {
            core: (r >> 8) as usize % 2,
            pc: 0x400 + (r >> 16) % 32 * 4,
            line,
            is_prefetch: r.is_multiple_of(7),
            is_write: r.is_multiple_of(11),
            cycle: i as u64 * 3,
        };
        if i % 1000 == 0 {
            fb.obstructed[0] = (r >> 3).is_multiple_of(2);
            fb.epoch += 1;
            llc.policy.on_epoch(&fb);
        }
        llc.access(&info, &fb);
    }
    llc
}

#[test]
fn policies_survive_mixed_traffic() {
    for policy in all_policies() {
        let name = policy.name().to_string();
        let llc = drive(policy, 50_000, 0xDE);
        let s = &llc.stats;
        assert!(
            s.demand_accesses + s.prefetch_accesses == 50_000,
            "{name}: lost accesses"
        );
        assert!(s.demand_misses <= s.demand_accesses, "{name}");
        assert!(
            s.bypasses <= s.demand_misses + s.prefetch_misses,
            "{name}: more bypasses than misses"
        );
        // occupancy can never exceed geometry
        assert!(llc.occupancy() <= llc.num_sets() * llc.ways(), "{name}");
    }
}

#[test]
fn non_bypassing_policies_fill_everything() {
    for scheme in ["LRU", "SHiP++", "Hawkeye", "Glider", "CARE"] {
        let llc = drive(build_policy(scheme).expect("known"), 20_000, 0xAB);
        assert_eq!(llc.stats.bypasses, 0, "{scheme} must not bypass");
    }
}

#[test]
fn hot_lines_survive_under_every_policy() {
    // after heavy mixed traffic, the hottest lines (0..64 re-accessed
    // constantly) should mostly be resident under any sane policy
    for policy in all_policies() {
        let name = policy.name().to_string();
        let llc = drive(policy, 80_000, 0x7);
        let resident = (0..64)
            .filter(|&l| llc.probe(LineAddr(l)).is_some())
            .count();
        assert!(
            resident >= 10,
            "{name}: only {resident}/64 hot lines resident"
        );
    }
}

#[test]
fn storage_overheads_are_positive_and_chrome_smallest() {
    let blocks = 196_608; // 12MB / 64B
    let chrome_kib = Chrome::new(ChromeConfig::default())
        .storage_overhead(blocks)
        .total_kib();
    assert!(chrome_kib > 0.0);
    for scheme in ["Hawkeye", "Glider", "Mockingjay", "CARE"] {
        let kib = build_policy(scheme)
            .expect("known")
            .storage_overhead(blocks)
            .total_kib();
        assert!(kib > 0.0, "{scheme}");
        assert!(
            chrome_kib < kib,
            "CHROME ({chrome_kib:.1} KB) must be smaller than {scheme} ({kib:.1} KB)"
        );
    }
}

#[test]
fn policy_determinism() {
    for mk in [
        || build_policy("Mockingjay").expect("known"),
        || Box::new(Chrome::new(ChromeConfig::default())) as Box<dyn LlcPolicy>,
    ] {
        let a = drive(mk(), 30_000, 0x99);
        let b = drive(mk(), 30_000, 0x99);
        assert_eq!(a.stats.demand_misses, b.stats.demand_misses);
        assert_eq!(a.stats.bypasses, b.stats.bypasses);
    }
}
