//! Randomized invariant tests over the whole stack: arbitrary traffic
//! must never violate the core structural invariants. Driven by a
//! seeded in-repo RNG so every run is deterministic.

use chrome_repro::chrome::{Chrome, ChromeConfig};
use chrome_repro::sim::camat::CamatTracker;
use chrome_repro::sim::config::CacheConfig;
use chrome_repro::sim::llc::SharedLlc;
use chrome_repro::sim::mmu::Mmu;
use chrome_repro::sim::policy::{AccessInfo, BuiltinLru, SystemFeedback};
use chrome_repro::sim::rng::SmallRng;
use chrome_repro::sim::types::LineAddr;

const CASES: usize = 64;

/// The C-AMAT union computation is bounded by the sum of interval
/// lengths and by the overall time span.
#[test]
fn camat_union_bounds() {
    let mut rng = SmallRng::seed_from_u64(0xE2E_0001);
    for case in 0..CASES {
        let count = rng.gen_range(1..200usize);
        let mut intervals: Vec<(u64, u64)> = (0..count)
            .map(|_| (rng.gen_range(0u64..10_000), rng.gen_range(0u64..500)))
            .collect();
        intervals.sort_by_key(|&(s, _)| s);
        let mut tracker = CamatTracker::new(1);
        let mut sum = 0u64;
        let mut max_end = 0u64;
        let mut min_start = u64::MAX;
        for &(s, len) in &intervals {
            tracker.record(0, s, s + len);
            sum += len;
            max_end = max_end.max(s + len);
            min_start = min_start.min(s);
        }
        let (active, n) = tracker.totals(0);
        assert!(
            active <= sum,
            "case {case}: union {active} exceeds sum {sum}"
        );
        assert!(
            active <= max_end - min_start,
            "case {case}: union exceeds span"
        );
        assert_eq!(n, intervals.len() as u64, "case {case}");
    }
}

/// The MMU is injective: distinct (core, page) pairs never map to the
/// same physical page.
#[test]
fn mmu_is_injective() {
    let mut rng = SmallRng::seed_from_u64(0xE2E_0002);
    for case in 0..CASES {
        let mut mmu = Mmu::new(1 << 30);
        let mut seen = std::collections::HashMap::new();
        let count = rng.gen_range(1..200usize);
        for _ in 0..count {
            let core = rng.gen_range(0..4usize);
            let vpage = rng.gen_range(0u64..100_000);
            let line = mmu.translate(core, vpage << 12);
            let ppage = line.page_number();
            if let Some(prev) = seen.insert(ppage, (core, vpage)) {
                assert_eq!(
                    prev,
                    (core, vpage),
                    "case {case}: two mappings share ppage {ppage}"
                );
            }
        }
    }
}

/// Under arbitrary traffic, the LLC respects geometry and stats stay
/// consistent, for both the trivial and the RL policy.
#[test]
fn llc_invariants_hold() {
    let mut rng = SmallRng::seed_from_u64(0xE2E_0003);
    for case in 0..CASES {
        let use_chrome = case % 2 == 0;
        let cfg = CacheConfig {
            capacity: 16 * 4 * 64,
            ways: 4,
            latency: 40,
            mshr_entries: 8,
        };
        let policy: Box<dyn chrome_repro::sim::LlcPolicy> = if use_chrome {
            Box::new(Chrome::new(ChromeConfig::default()))
        } else {
            Box::new(BuiltinLru::new())
        };
        let mut llc = SharedLlc::new(&cfg, 1, policy);
        let fb = SystemFeedback::new(1);
        let n = rng.gen_range(1..400usize) as u64;
        for i in 0..n {
            let info = AccessInfo {
                core: 0,
                pc: 0x400 + rng.gen_range(0u64..64) * 4,
                line: LineAddr(rng.gen_range(0u64..50_000)),
                is_prefetch: rng.next_u64() & 1 == 1,
                is_write: false,
                cycle: i,
            };
            llc.access(&info, &fb);
        }
        let s = &llc.stats;
        assert_eq!(s.demand_accesses + s.prefetch_accesses, n, "case {case}");
        assert!(s.demand_misses <= s.demand_accesses, "case {case}");
        assert!(s.prefetch_misses <= s.prefetch_accesses, "case {case}");
        assert!(
            s.evictions_unused <= s.evictions + s.bypasses,
            "case {case}"
        );
        assert!(llc.occupancy() <= 16 * 4, "case {case}: over geometry");
        assert!(
            s.bypasses <= s.demand_misses + s.prefetch_misses,
            "case {case}"
        );
    }
}

/// Workload generators respect their declared determinism.
#[test]
fn generators_are_deterministic() {
    let mut rng = SmallRng::seed_from_u64(0xE2E_0004);
    for case in 0..CASES {
        let seed = rng.next_u64();
        let steps = rng.gen_range(1..300usize);
        let mut a = chrome_repro::traces::build_workload("astar", seed).expect("known");
        let mut b = chrome_repro::traces::build_workload("astar", seed).expect("known");
        for _ in 0..steps {
            assert_eq!(a.next_record(), b.next_record(), "case {case}: divergence");
        }
    }
}
