//! Property-based tests over the whole stack: arbitrary traffic must
//! never violate the core structural invariants.

use chrome_repro::chrome::{Chrome, ChromeConfig};
use chrome_repro::sim::camat::CamatTracker;
use chrome_repro::sim::config::CacheConfig;
use chrome_repro::sim::llc::SharedLlc;
use chrome_repro::sim::mmu::Mmu;
use chrome_repro::sim::policy::{AccessInfo, BuiltinLru, SystemFeedback};
use chrome_repro::sim::types::LineAddr;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The C-AMAT union computation is bounded by the sum of interval
    /// lengths and by the overall time span.
    #[test]
    fn camat_union_bounds(intervals in prop::collection::vec((0u64..10_000, 0u64..500), 1..200)) {
        let mut tracker = CamatTracker::new(1);
        let mut sorted = intervals.clone();
        sorted.sort_by_key(|&(s, _)| s);
        let mut sum = 0u64;
        let mut max_end = 0u64;
        let mut min_start = u64::MAX;
        for (s, len) in sorted {
            tracker.record(0, s, s + len);
            sum += len;
            max_end = max_end.max(s + len);
            min_start = min_start.min(s);
        }
        let (active, count) = tracker.totals(0);
        prop_assert!(active <= sum, "union {active} exceeds sum {sum}");
        prop_assert!(active <= max_end - min_start, "union exceeds span");
        prop_assert_eq!(count, intervals.len() as u64);
    }

    /// The MMU is injective: distinct (core, page) pairs never map to
    /// the same physical page.
    #[test]
    fn mmu_is_injective(pages in prop::collection::vec((0usize..4, 0u64..100_000), 1..200)) {
        let mut mmu = Mmu::new(1 << 30);
        let mut seen = std::collections::HashMap::new();
        for (core, vpage) in pages {
            let line = mmu.translate(core, vpage << 12);
            let ppage = line.page_number();
            if let Some(prev) = seen.insert(ppage, (core, vpage)) {
                prop_assert_eq!(prev, (core, vpage), "two mappings share ppage {}", ppage);
            }
        }
    }

    /// Under arbitrary traffic, the LLC respects geometry and stats stay
    /// consistent, for both the trivial and the RL policy.
    #[test]
    fn llc_invariants_hold(ops in prop::collection::vec((0u64..50_000, 0u64..64, any::<bool>()), 1..400),
                           use_chrome in any::<bool>()) {
        let cfg = CacheConfig { capacity: 16 * 4 * 64, ways: 4, latency: 40, mshr_entries: 8 };
        let policy: Box<dyn chrome_repro::sim::LlcPolicy> = if use_chrome {
            Box::new(Chrome::new(ChromeConfig::default()))
        } else {
            Box::new(BuiltinLru::new())
        };
        let mut llc = SharedLlc::new(&cfg, 1, policy);
        let fb = SystemFeedback::new(1);
        let n = ops.len() as u64;
        for (i, (line, pc, prefetch)) in ops.into_iter().enumerate() {
            let info = AccessInfo {
                core: 0,
                pc: 0x400 + pc * 4,
                line: LineAddr(line),
                is_prefetch: prefetch,
                is_write: false,
                cycle: i as u64,
            };
            llc.access(&info, &fb);
        }
        let s = &llc.stats;
        prop_assert_eq!(s.demand_accesses + s.prefetch_accesses, n);
        prop_assert!(s.demand_misses <= s.demand_accesses);
        prop_assert!(s.prefetch_misses <= s.prefetch_accesses);
        prop_assert!(s.evictions_unused <= s.evictions + s.bypasses);
        prop_assert!(llc.occupancy() <= 16 * 4);
        // a resident line must be found where it was inserted
        prop_assert!(s.bypasses <= s.demand_misses + s.prefetch_misses);
    }

    /// Workload generators only produce addresses within u64 range and
    /// respect their declared determinism.
    #[test]
    fn generators_are_deterministic(seed in any::<u64>(), steps in 1usize..300) {
        let mut a = chrome_repro::traces::build_workload("astar", seed).expect("known");
        let mut b = chrome_repro::traces::build_workload("astar", seed).expect("known");
        for _ in 0..steps {
            prop_assert_eq!(a.next_record(), b.next_record());
        }
    }
}
