//! Telemetry integration: a real multi-core run must produce an epoch
//! series whose per-epoch counter deltas reconcile exactly with the
//! end-of-run `CacheStats`, and the artifact exporter must write every
//! format.

#![cfg(feature = "telemetry")]

use chrome_repro::chrome::{Chrome, ChromeConfig};
use chrome_repro::sim::{SimConfig, System};
use chrome_repro::telemetry::{EventKind, TelemetryConfig, TelemetrySink};
use chrome_repro::traces::mix;

fn run_with_telemetry() -> (chrome_repro::sim::stats::SimResults, TelemetrySink) {
    let traces = mix::build_mix(&["mcf", "gcc"], 11).expect("known workloads");
    let policy = Box::new(Chrome::new(ChromeConfig {
        sampled_sets: 256,
        eq_fifo_len: 8,
        ..Default::default()
    }));
    let mut sys = System::with_policy(SimConfig::small_test(2), traces, policy);
    let sink = TelemetrySink::recording(TelemetryConfig::default());
    sys.set_telemetry(sink.clone());
    let r = sys.run(60_000, 5_000);
    (r, sink)
}

#[test]
fn epoch_series_reconciles_with_final_stats() {
    let (r, sink) = run_with_telemetry();
    let epochs = sink.with(|t| t.epochs.clone()).expect("recording sink");
    assert!(
        epochs.len() >= 2,
        "run too short to cross an epoch boundary"
    );

    // Epoch indices are contiguous and cycles strictly increase.
    let records = epochs.records();
    for (i, rec) in records.iter().enumerate() {
        assert_eq!(rec.epoch, i as u64, "epoch sequence has a gap");
        if i > 0 {
            assert!(
                rec.end_cycle > records[i - 1].end_cycle,
                "epoch cycles not monotone"
            );
        }
        assert_eq!(rec.camat.len(), 2, "one C-AMAT sample per core");
        assert!(rec.mshr_occupancy <= rec.mshr_capacity);
    }

    // Record count matches the measured span at the configured epoch
    // length (10K cycles in the small test config): every complete
    // epoch spans at least one boundary, plus the final partial epoch.
    let span = records.last().unwrap().end_cycle - records[0].end_cycle;
    let complete = (epochs.len() - 1) as u64;
    assert!(
        complete >= span / 10_000,
        "fewer epochs than boundaries crossed"
    );
    assert!(
        complete <= span / 10_000 + 2,
        "more epochs than boundaries crossed"
    );

    // Per-epoch deltas sum exactly to the end-of-run totals.
    assert_eq!(epochs.summed(|e| e.demand_accesses), r.llc.demand_accesses);
    assert_eq!(epochs.summed(|e| e.demand_misses), r.llc.demand_misses);
    assert_eq!(epochs.summed(|e| e.bypasses), r.llc.bypasses);
    assert_eq!(epochs.summed(|e| e.evictions), r.llc.evictions);
    assert_eq!(epochs.summed(|e| e.writebacks), r.llc.writebacks);
}

#[test]
fn event_trace_captures_decisions() {
    let (r, sink) = run_with_telemetry();
    let (boundaries, victims, bypasses, rewards) = sink
        .with(|t| {
            let mut b = 0u64;
            let mut v = 0u64;
            let mut by = 0u64;
            let mut rw = 0u64;
            for e in t.events.iter() {
                match e.kind {
                    EventKind::EpochBoundary { .. } => b += 1,
                    EventKind::VictimChosen { .. } => v += 1,
                    EventKind::BypassTaken { .. } => by += 1,
                    EventKind::RewardApplied { .. } => rw += 1,
                    _ => {}
                }
            }
            (b, v, by, rw)
        })
        .expect("recording sink");
    let epochs = sink.with(|t| t.epochs.len()).unwrap();
    assert_eq!(
        boundaries, epochs as u64,
        "one boundary event per epoch record"
    );
    assert!(
        victims > 0,
        "no victim events despite {} evictions",
        r.llc.evictions
    );
    if r.llc.bypasses > 0 {
        assert!(bypasses > 0, "bypasses happened but no events traced");
    }
    assert!(rewards > 0, "agent trained without any reward events");
}

#[test]
fn exporter_writes_all_artifacts() {
    let (_, sink) = run_with_telemetry();
    let dir = std::env::temp_dir().join(format!("chrome_telem_it_{}", std::process::id()));
    let files = sink.export(&dir, "it").expect("export succeeds");
    assert_eq!(files.len(), 4);
    let epochs = sink.with(|t| t.epochs.len()).unwrap();
    let csv = std::fs::read_to_string(dir.join("it_epochs.csv")).unwrap();
    assert_eq!(
        csv.lines().count(),
        epochs + 1,
        "CSV = header + one row per epoch"
    );
    let jsonl = std::fs::read_to_string(dir.join("it_epochs.jsonl")).unwrap();
    assert_eq!(jsonl.lines().count(), epochs);
    let trace = std::fs::read_to_string(dir.join("it_trace.json")).unwrap();
    assert!(trace.starts_with('{') && trace.ends_with('}'));
    assert!(trace.contains("\"traceEvents\":["));
    std::fs::remove_dir_all(&dir).ok();
}
